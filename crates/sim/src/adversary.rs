//! Adversarial wave schedules: the paper's lower-bound constructions.
//!
//! Proposition 5.3 and Theorem 5.11 both build a timed execution from three
//! *waves* of lock-step tokens:
//!
//! 1. a **slow** first wave that fills the top output band,
//! 2. a second wave right behind it that turns **fast** once it enters the
//!    final totally-ordered region, collecting the high values,
//! 3. a **fast** third wave, launched the instant the second exits, that
//!    overtakes the still-in-flight first wave and collects values *below*
//!    everything the second wave returned.
//!
//! Re-using the second wave's processes for the third wave turns the
//! non-linearizable tokens into non-*sequentially-consistent* ones — the
//! paper's one-line twist on \[LSST99\]'s construction.

use crate::error::SimError;
use crate::ids::ProcessId;
use crate::spec::TimedTokenSpec;
use cnet_topology::analysis::split::split_sequence;
use cnet_topology::Network;
use std::ops::Range;

/// A three-wave schedule plus the metadata experiments need to count
/// inconsistent tokens.
#[derive(Clone, Debug, PartialEq)]
pub struct ThreeWaveSchedule {
    /// The token specs, wave 1 first, then wave 2, then wave 3 (ties in time
    /// resolve in that order).
    pub specs: Vec<TimedTokenSpec>,
    /// Token positions of the first wave.
    pub wave1: Range<usize>,
    /// Token positions of the second wave.
    pub wave2: Range<usize>,
    /// Token positions of the third wave.
    pub wave3: Range<usize>,
    /// The number of processes shared between waves 2 and 3 (`w / 2^ℓ`).
    pub shared_processes: usize,
    /// The asynchrony ratio `c_max / c_min` strictly above which the third
    /// wave provably overtakes the first: `1 + d(G) / region_depth`.
    pub required_ratio: f64,
}

/// Builds the generic three-wave schedule.
///
/// * `region_depth` — the number of final layers in which wave 2 (and the
///   whole of wave 3) runs at `c_min` while wave 1 runs at `c_max`. Theorem
///   5.11 uses `d(S⁽ℓ⁾(G))`; Proposition 5.3 uses `d(M(w)) = lg w`.
/// * `wave1_count` — tokens in waves 1 and 3 (the paper's `w·(1 − 2^{−ℓ})`).
/// * `wave2_count` — tokens in wave 2, shared with the head of wave 3 (the
///   paper's `w / 2^ℓ`).
///
/// Wave `i` enters one token per input wire `0..count`; the schedule is
/// valid for any uniform network with `fan_in = fan_out = w`.
///
/// # Errors
///
/// Returns [`SimError::InvalidConstruction`] if the counts or the region
/// depth are out of range, or [`SimError::NotUniform`] /
/// [`SimError::TransformNeedsRegularFan`]-style preconditions fail.
pub fn three_wave_with_region(
    net: &Network,
    region_depth: usize,
    wave1_count: usize,
    wave2_count: usize,
    c_min: f64,
    c_max: f64,
) -> Result<ThreeWaveSchedule, SimError> {
    if !net.is_uniform() {
        return Err(SimError::NotUniform);
    }
    let w = net
        .fan()
        .ok_or(SimError::InvalidConstruction { what: "network must have fan_in = fan_out" })?;
    let d = net.depth();
    if region_depth == 0 || region_depth > d {
        return Err(SimError::InvalidConstruction { what: "region depth must be in 1..=depth" });
    }
    if wave1_count == 0 || wave1_count > w || wave2_count == 0 || wave2_count > wave1_count {
        return Err(SimError::InvalidConstruction {
            what: "need 1 <= wave2_count <= wave1_count <= fan",
        });
    }
    if !(c_min > 0.0 && c_max >= c_min) {
        return Err(SimError::InvalidConstruction { what: "need 0 < c_min <= c_max" });
    }

    let n1 = wave1_count;
    let n2 = wave2_count;
    let mut specs = Vec::with_capacity(2 * n1 + n2);

    // Wave 1: slow everywhere, fresh processes n2..n2+n1, inputs 0..n1.
    for j in 0..n1 {
        specs.push(TimedTokenSpec::lock_step(ProcessId(n2 + j), j, 0.0, c_max, d));
    }
    // Wave 2: processes 0..n2, inputs 0..n2; slow until the final
    // `region_depth` transitions, then fast. Enters at time 0, right behind
    // wave 1 (ties resolve by spec position).
    let slow_transitions = d - region_depth;
    for j in 0..n2 {
        let mut delays = vec![c_max; slow_transitions];
        delays.extend(std::iter::repeat_n(c_min, region_depth));
        specs.push(TimedTokenSpec::with_delays(ProcessId(j), j, 0.0, &delays));
    }
    // Read the exit time off the built spec rather than recomputing it:
    // accumulated addition and closed-form multiplication can differ in the
    // last ulp, and wave 3 must not enter before wave 2 exits.
    let wave2_exit = specs[n1].exit_time();
    // Wave 3: enters the instant wave 2 exits; fast everywhere. The first n2
    // tokens reuse wave 2's processes (same input wires); the rest are
    // fresh.
    for j in 0..n1 {
        let process = if j < n2 { ProcessId(j) } else { ProcessId(n2 + n1 + (j - n2)) };
        specs.push(TimedTokenSpec::lock_step(process, j, wave2_exit, c_min, d));
    }

    Ok(ThreeWaveSchedule {
        specs,
        wave1: 0..n1,
        wave2: n1..n1 + n2,
        wave3: n1 + n2..2 * n1 + n2,
        shared_processes: n2,
        required_ratio: 1.0 + d as f64 / region_depth as f64,
    })
}

/// The three-wave schedule of **Theorem 5.11** at level `ell`, for a
/// uniform, continuously complete, continuously uniformly splittable
/// counting network (the split structure is computed and checked here).
///
/// Under `c_max/c_min > 1 + d(G)/d(S⁽ℓ⁾(G))` the resulting execution has
/// non-linearizability fraction at least `1 − 1/(2 − 2^{−ℓ})` and
/// non-sequential-consistency fraction at least `2^{−ℓ}/(2 − 2^{−ℓ})`.
///
/// # Errors
///
/// Returns [`SimError::InvalidConstruction`] if `ell` is out of
/// `1..=sp(G)`, if the fan is not divisible by `2^ell`, or if the network
/// lacks the required split structure.
pub fn three_wave(
    net: &Network,
    ell: usize,
    c_min: f64,
    c_max: f64,
) -> Result<ThreeWaveSchedule, SimError> {
    let seq = split_sequence(net).map_err(|_| SimError::InvalidConstruction {
        what: "network must have a continuously complete, uniformly splittable split sequence",
    })?;
    if !(seq.is_continuously_complete() && seq.is_continuously_uniformly_splittable()) {
        return Err(SimError::InvalidConstruction {
            what: "network must be continuously complete and uniformly splittable",
        });
    }
    let sp = seq.split_number();
    if ell == 0 || ell > sp {
        return Err(SimError::InvalidConstruction { what: "ell must be in 1..=sp(G)" });
    }
    let w = net
        .fan()
        .ok_or(SimError::InvalidConstruction { what: "network must have fan_in = fan_out" })?;
    let chunk = 1usize << ell;
    if w % chunk != 0 {
        return Err(SimError::InvalidConstruction { what: "fan must be divisible by 2^ell" });
    }
    let n2 = w / chunk;
    let n1 = w - n2;
    let region = seq.stage_depth(ell);
    three_wave_with_region(net, region, n1, n2, c_min, c_max)
}

/// The three-wave schedule of **Proposition 5.3** for the bitonic network
/// `B(w)`: all three waves have `w/2` tokens and the fast region is the
/// whole merging network `M(w)` (depth `lg w`), giving the threshold
/// `c_max/c_min > (lg w + 3)/2`.
///
/// # Errors
///
/// Returns [`SimError::InvalidConstruction`] if the network's fan is not a
/// power of two at least 4 or the region depth does not fit (callers pass
/// the bitonic network `B(w)`).
pub fn bitonic_three_wave(
    net: &Network,
    c_min: f64,
    c_max: f64,
) -> Result<ThreeWaveSchedule, SimError> {
    let w = net
        .fan()
        .ok_or(SimError::InvalidConstruction { what: "network must have fan_in = fan_out" })?;
    if !w.is_power_of_two() || w < 4 {
        return Err(SimError::InvalidConstruction {
            what: "Proposition 5.3 needs fan a power of two, at least 4",
        });
    }
    let lgw = w.trailing_zeros() as usize;
    three_wave_with_region(net, lgw, w / 2, w / 2, c_min, c_max)
}

/// A holding-race schedule (see [`holding_race`]).
#[derive(Clone, Debug, PartialEq)]
pub struct HoldingRace {
    /// The token specs: the holder, then the fast wave, then the chaser.
    pub specs: Vec<TimedTokenSpec>,
    /// Position of the slow holder token `A`.
    pub holder: usize,
    /// Positions of the fast wave tokens.
    pub wave: Range<usize>,
    /// Position of the chaser token `Y`.
    pub chaser: usize,
    /// The asynchrony ratio strictly above which the chaser provably beats
    /// the holder to its counter: `d(G) + 1`.
    pub required_ratio: f64,
}

/// Builds a **holding race**: token `A` leads a full wave of `w` tokens
/// through the network (so it claims counter 0's first value) but crawls on
/// its final wire; the other `w − 1` tokens exit fast with values
/// `1..w−1`; then a chaser token `Y` enters — completely after the fast
/// wave — and, being the `(w+1)`-th token, wraps around to counter 0. When
/// `c_max/c_min > d(G) + 1` the chaser counts before the holder and obtains
/// value `0 < 1`: a non-linearizable execution.
///
/// With `shared_process`, the chaser is issued by the same process as the
/// last fast-wave token, making the execution non-*sequentially-consistent*
/// as well. At depth 1 the threshold is the tight `c_max/c_min > 2` of
/// [LSST99, Thms 4.1/4.3].
///
/// # Errors
///
/// Returns [`SimError::InvalidConstruction`] for fans below 2 or bad delay
/// bounds, and [`SimError::NotUniform`] for non-uniform networks.
pub fn holding_race(
    net: &Network,
    c_min: f64,
    c_max: f64,
    shared_process: bool,
) -> Result<HoldingRace, SimError> {
    if !net.is_uniform() {
        return Err(SimError::NotUniform);
    }
    let w = net.fan_out();
    if w < 2 {
        return Err(SimError::InvalidConstruction { what: "holding race needs fan-out >= 2" });
    }
    if !(c_min > 0.0 && c_max >= c_min) {
        return Err(SimError::InvalidConstruction { what: "need 0 < c_min <= c_max" });
    }
    let d = net.depth();
    if d == 0 {
        return Err(SimError::InvalidConstruction { what: "holding race needs depth >= 1" });
    }
    let wire = |k: usize| k % net.fan_in();
    let mut specs = Vec::with_capacity(w + 1);
    // Holder A: fast through the balancers (staying ahead of the wave by
    // tie order), slow on the final wire into its counter.
    let mut holder_delays = vec![c_min; d - 1];
    holder_delays.push(c_max);
    specs.push(TimedTokenSpec::with_delays(ProcessId(0), wire(0), 0.0, &holder_delays));
    // Fast wave: w − 1 tokens right behind, fully fast.
    for k in 1..w {
        specs.push(TimedTokenSpec::lock_step(ProcessId(k), wire(k), 0.0, c_min, d));
    }
    // Chaser Y: enters the instant the wave exits, fully fast.
    let wave_exit = specs[w - 1].exit_time();
    let chaser_process = if shared_process { ProcessId(w - 1) } else { ProcessId(w) };
    let chaser_wire = if shared_process { wire(w - 1) } else { wire(0) };
    specs.push(TimedTokenSpec::lock_step(chaser_process, chaser_wire, wave_exit, c_min, d));

    Ok(HoldingRace {
        specs,
        holder: 0,
        wave: 1..w,
        chaser: w,
        required_ratio: d as f64 + 1.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::timing::TimingParams;
    use cnet_topology::construct::{bitonic, counting_tree, periodic};

    #[test]
    fn bitonic_waves_produce_the_paper_values() {
        let w = 8;
        let net = bitonic(w).unwrap();
        // Ratio strictly above (lg 8 + 3)/2 = 3.
        let sched = bitonic_three_wave(&net, 1.0, 3.5).unwrap();
        assert_eq!(sched.required_ratio, 3.0);
        let exec = run(&net, &sched.specs).unwrap();
        // Wave 2 returns w/2 .. w-1.
        let mut wave2_values: Vec<u64> =
            sched.wave2.clone().map(|i| exec.records()[i].value).collect();
        wave2_values.sort_unstable();
        assert_eq!(wave2_values, (w as u64 / 2..w as u64).collect::<Vec<_>>());
        // Wave 3 returns 0 .. w/2-1 (it overtook wave 1).
        let mut wave3_values: Vec<u64> =
            sched.wave3.clone().map(|i| exec.records()[i].value).collect();
        wave3_values.sort_unstable();
        assert_eq!(wave3_values, (0..w as u64 / 2).collect::<Vec<_>>());
        // Wave 1 got the late values w .. 3w/2-1.
        let mut wave1_values: Vec<u64> =
            sched.wave1.clone().map(|i| exec.records()[i].value).collect();
        wave1_values.sort_unstable();
        assert_eq!(wave1_values, (w as u64..3 * w as u64 / 2).collect::<Vec<_>>());
    }

    #[test]
    fn below_threshold_wave3_does_not_overtake() {
        let w = 8;
        let net = bitonic(w).unwrap();
        // Ratio 2 < 3: the construction runs but wave 3 stays behind wave 1.
        let sched = bitonic_three_wave(&net, 1.0, 2.0).unwrap();
        let exec = run(&net, &sched.specs).unwrap();
        let min_wave3 = sched.wave3.clone().map(|i| exec.records()[i].value).min().unwrap();
        assert!(min_wave3 >= w as u64, "wave 3 must not bypass wave 1 at ratio 2");
    }

    #[test]
    fn theorem_5_11_waves_on_bitonic_all_levels() {
        let w = 16;
        let net = bitonic(w).unwrap();
        for ell in 1..=4usize {
            // Choose a ratio above the level's threshold.
            let sched = three_wave(&net, ell, 1.0, 100.0).unwrap();
            let n2 = w / (1 << ell);
            let n1 = w - n2;
            assert_eq!(sched.wave1.len(), n1, "ell={ell}");
            assert_eq!(sched.wave2.len(), n2, "ell={ell}");
            assert_eq!(sched.wave3.len(), n1, "ell={ell}");
            let exec = run(&net, &sched.specs).unwrap();
            // Wave 2 returns the top band; wave 3 the bottom band.
            let mut wave2_values: Vec<u64> =
                sched.wave2.clone().map(|i| exec.records()[i].value).collect();
            wave2_values.sort_unstable();
            assert_eq!(
                wave2_values,
                (n1 as u64..w as u64).collect::<Vec<_>>(),
                "wave 2 at ell={ell}"
            );
            let mut wave3_values: Vec<u64> =
                sched.wave3.clone().map(|i| exec.records()[i].value).collect();
            wave3_values.sort_unstable();
            assert_eq!(
                wave3_values,
                (0..n1 as u64).collect::<Vec<_>>(),
                "wave 3 at ell={ell}"
            );
        }
    }

    #[test]
    fn theorem_5_11_waves_on_periodic() {
        let w = 8;
        let net = periodic(w).unwrap();
        for ell in 1..=3usize {
            let sched = three_wave(&net, ell, 1.0, 100.0).unwrap();
            let exec = run(&net, &sched.specs).unwrap();
            let n1 = w - w / (1 << ell);
            let mut wave3_values: Vec<u64> =
                sched.wave3.clone().map(|i| exec.records()[i].value).collect();
            wave3_values.sort_unstable();
            assert_eq!(wave3_values, (0..n1 as u64).collect::<Vec<_>>(), "ell={ell}");
        }
    }

    #[test]
    fn measured_params_match_the_construction() {
        let net = bitonic(8).unwrap();
        let sched = bitonic_three_wave(&net, 1.0, 4.0).unwrap();
        let exec = run(&net, &sched.specs).unwrap();
        let p = TimingParams::measure(&exec);
        assert_eq!(p.c_min, Some(1.0));
        assert_eq!(p.c_max, Some(4.0));
        // Shared processes re-enter immediately: C_L = 0.
        assert_eq!(p.local_delay, Some(0.0));
    }

    #[test]
    fn holding_race_on_single_balancer_at_ratio_just_above_two() {
        // B(2) has depth 1: the race succeeds at any ratio > 2, matching the
        // tight necessity bound of LSST99.
        let net = bitonic(2).unwrap();
        let race = holding_race(&net, 1.0, 2.01, true).unwrap();
        assert_eq!(race.required_ratio, 2.0);
        let exec = run(&net, &race.specs).unwrap();
        // The chaser wraps to counter 0 and beats the holder.
        assert_eq!(exec.records()[race.chaser].value, 0);
        assert_eq!(exec.records()[race.holder].value, 2);
        // The wave token got 1: chaser (same process) saw 1 then 0.
        assert_eq!(exec.records()[race.wave.start].value, 1);
    }

    #[test]
    fn holding_race_below_threshold_fails_to_overtake() {
        let net = bitonic(2).unwrap();
        let race = holding_race(&net, 1.0, 1.99, true).unwrap();
        let exec = run(&net, &race.specs).unwrap();
        assert_eq!(exec.records()[race.holder].value, 0);
        assert_eq!(exec.records()[race.chaser].value, 2);
    }

    #[test]
    fn holding_race_on_deep_networks() {
        for net in [bitonic(8).unwrap(), periodic(8).unwrap()] {
            let d = net.depth() as f64;
            let race = holding_race(&net, 1.0, d + 1.01, false).unwrap();
            let exec = run(&net, &race.specs).unwrap();
            assert_eq!(exec.records()[race.chaser].value, 0, "{net}");
            assert_eq!(exec.records()[race.holder].value, 8, "{net}");
        }
    }

    #[test]
    fn holding_race_on_counting_tree() {
        // All tokens share the single input wire of the tree.
        let net = counting_tree(4).unwrap();
        let race = holding_race(&net, 1.0, net.depth() as f64 + 1.01, true).unwrap();
        let exec = run(&net, &race.specs).unwrap();
        assert_eq!(exec.records()[race.chaser].value, 0);
        // Chaser's process previously saw value 3 (the last wave token).
        assert_eq!(exec.records()[race.wave.end - 1].value, 3);
    }

    #[test]
    fn holding_race_rejects_bad_inputs() {
        let net = bitonic(2).unwrap();
        assert!(holding_race(&net, 0.0, 1.0, false).is_err());
        assert!(holding_race(&net, 2.0, 1.0, false).is_err());
        let id = cnet_topology::construct::identity(4).unwrap();
        assert!(holding_race(&id, 1.0, 2.0, false).is_err());
    }

    #[test]
    fn invalid_levels_are_rejected() {
        let net = bitonic(8).unwrap();
        assert!(three_wave(&net, 0, 1.0, 10.0).is_err());
        assert!(three_wave(&net, 4, 1.0, 10.0).is_err()); // sp(B(8)) = 3
        assert!(three_wave_with_region(&net, 0, 4, 4, 1.0, 10.0).is_err());
        assert!(three_wave_with_region(&net, 99, 4, 4, 1.0, 10.0).is_err());
        assert!(three_wave_with_region(&net, 3, 4, 5, 1.0, 10.0).is_err());
        assert!(three_wave_with_region(&net, 3, 4, 4, 0.0, 10.0).is_err());
        assert!(bitonic_three_wave(&bitonic(2).unwrap(), 1.0, 10.0).is_err());
    }
}
