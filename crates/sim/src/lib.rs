//! Timed executions of balancing networks.
//!
//! This crate implements Sections 2.2–2.3 of *Mavronicolas, Merritt,
//! Taubenfeld — "Sequentially Consistent versus Linearizable Counting
//! Networks"*: executions as alternating sequences of network states and
//! `BAL`/`COUNT` steps, timed executions associating a non-decreasing real
//! time with each step, and the timing parameters
//! `c_min`, `c_min^P`, `c_max`, `C_L^P`, `C_L`, `C_g` measured over a
//! schedule.
//!
//! The centerpiece is [`engine::run`]: given a uniform network and a list of
//! [`spec::TimedTokenSpec`]s (one per token, each with a time for every layer
//! crossing), it replays all steps in time order through the sequential
//! semantics of `cnet_topology::state::NetworkState` and produces a
//! [`exec::TimedExecution`] with the full step trace and one
//! [`exec::TokenRecord`] per token — the operation history that the
//! consistency checkers in `cnet-core` consume.
//!
//! Schedules come from three sources:
//!
//! * [`workload`] — randomized schedules inside a timing envelope
//!   (for sufficiency experiments: conditions that *guarantee* consistency
//!   must show zero violations over many seeds);
//! * [`adversary`] — the paper's explicit worst-case wave constructions
//!   (Proposition 5.3 and Theorem 5.11 lower bounds);
//! * [`transform`] — the Theorem 3.2 transformation turning any
//!   non-linearizable timed execution into a non-sequentially-consistent one
//!   with the same timing parameters.
//!
//! # Example
//!
//! ```
//! use cnet_topology::construct::bitonic;
//! use cnet_sim::workload::{WorkloadConfig, generate};
//! use cnet_sim::engine::run;
//!
//! let net = bitonic(4)?;
//! let cfg = WorkloadConfig {
//!     processes: 4,
//!     tokens_per_process: 5,
//!     c_min: 1.0,
//!     c_max: 2.0,
//!     local_delay: 0.5,
//!     start_spread: 3.0,
//! };
//! let specs = generate(&net, &cfg, 42);
//! let exec = run(&net, &specs)?;
//! assert_eq!(exec.records().len(), 20);
//! // Values handed out are exactly 0..20 in some order.
//! let mut vs: Vec<u64> = exec.records().iter().map(|r| r.value).collect();
//! vs.sort_unstable();
//! assert_eq!(vs, (0..20).collect::<Vec<_>>());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod engine;
pub mod error;
pub mod exec;
pub mod ids;
pub mod spec;
pub mod timing;
pub mod transform;
pub mod validate;
pub mod workload;

pub use error::SimError;
pub use exec::{Step, TimedExecution, TimedStep, TokenRecord};
pub use ids::{ProcessId, TokenId};
pub use spec::TimedTokenSpec;
pub use timing::TimingParams;
