//! The Theorem 3.2 transformation: from non-linearizable to
//! non-sequentially-consistent, preserving the timing parameters.
//!
//! Theorem 3.2 shows that no timing condition over `c_min`, `c_max`, `C_g`
//! can distinguish sequential consistency from linearizability: given any
//! timed execution with a non-linearizable token pair — `T` completely
//! precedes `T'` yet returns a larger value — one can build another timed
//! execution of the same network, with the same timing parameters, that is
//! not even sequentially consistent.
//!
//! The construction (for a uniform counting network with `fan_in = fan_out =
//! W` and regular balancers):
//!
//! 1. relabel `T` to a fresh process `P*` assigned to `T`'s input wire `i`;
//! 2. insert a *flushing wave* of `W` fresh tokens, one per input wire, that
//!    crosses each layer at the same instant `T'` does, **immediately
//!    before** `T'`'s step. By the modular-counting property (Lemma 3.1),
//!    exactly one wave token leaves on each wire of every layer and every
//!    balancer's state is restored, so no other token's route changes;
//! 3. order the wave at each layer so the token that entered on wire `i` —
//!    also owned by `P*` — follows a path to the very counter `T'` was
//!    heading to, scooping the value `T'` would have received.
//!
//! Now `P*` issues `T` (large value) and then the wave token (small value):
//! not sequentially consistent.
//!
//! Simultaneity is realized with an infinitesimal time skew `δ` (ties in
//! the engine are broken by slice position, which cannot express the
//! per-layer orders the steering needs). The skew changes every measured
//! timing parameter by less than `W·d·δ`, where `δ` is chosen below
//! `10⁻⁶` of the smallest relevant gap in the original schedule.

use crate::error::SimError;
use crate::exec::{Step, TimedExecution};
use crate::ids::{ProcessId, TokenId};
use crate::spec::TimedTokenSpec;
use cnet_topology::analysis::valency::Valencies;
use cnet_topology::ids::{SinkId, SourceId, WireId};
use cnet_topology::network::WireEnd;
use cnet_topology::Network;

/// The output of the transformation.
#[derive(Clone, Debug, PartialEq)]
pub struct TransformOutcome {
    /// The new token specs: the originals (with `T` relabeled) followed by
    /// the `W` flushing-wave tokens.
    pub specs: Vec<TimedTokenSpec>,
    /// The fresh process owning both the relabeled `T` and the steered wave
    /// token — the process that witnesses the sequential-consistency
    /// violation.
    pub witness_process: ProcessId,
    /// Position (token id) of the relabeled earlier token `T`.
    pub earlier_token: TokenId,
    /// Position (token id) of the steered wave token that scoops `T'`'s
    /// value.
    pub wave_witness_token: TokenId,
    /// The value `T` obtained in the original execution (the wave witness
    /// will obtain a strictly smaller one).
    pub earlier_value: u64,
}

/// Applies the Theorem 3.2 construction to an execution produced by
/// [`crate::engine::run`] on `net` from `specs`.
///
/// Picks as witness pair the non-linearizable `(T, T')` with the largest
/// slack `T'.enter − T.exit` (any pair works; slack gives the cleanest
/// skew).
///
/// # Errors
///
/// * [`SimError::TransformNeedsRegularFan`] — the network is not regular or
///   `fan_in ≠ fan_out` (the paper's LCM extension for irregular balancers
///   is not implemented; the bitonic and periodic networks are regular).
/// * [`SimError::NoWitnessPair`] — the execution is linearizable, or every
///   witness pair has `T'` entering at the very instant `T` exits (no room
///   for the skew).
/// * [`SimError::InvalidConstruction`] — `T'`'s step times are not strictly
///   increasing (the skew needs strictly increasing anchors).
pub fn desequentialize(
    net: &Network,
    specs: &[TimedTokenSpec],
    exec: &TimedExecution,
) -> Result<TransformOutcome, SimError> {
    if !net.is_regular() || net.fan().is_none() {
        return Err(SimError::TransformNeedsRegularFan);
    }
    if !net.is_uniform() {
        return Err(SimError::NotUniform);
    }
    let w = net.fan().expect("checked above");
    let depth = net.depth();

    // 1. Find the witness pair maximizing T'.enter − T.exit.
    let records = exec.records();
    let mut witness: Option<(usize, usize, f64)> = None;
    for (a_pos, a) in records.iter().enumerate() {
        for (b_pos, b) in records.iter().enumerate() {
            if a.completely_precedes(b) && a.value > b.value {
                let slack = b.enter_time - a.exit_time;
                if witness.is_none_or(|(_, _, s)| slack > s) {
                    witness = Some((a_pos, b_pos, slack));
                }
            }
        }
    }
    let (t_pos, tp_pos, slack) = witness.ok_or(SimError::NoWitnessPair)?;
    if slack <= 0.0 {
        return Err(SimError::NoWitnessPair);
    }
    let tp = &records[tp_pos];
    let anchor_times = &tp.step_times;
    if anchor_times.windows(2).any(|p| p[0] >= p[1]) {
        return Err(SimError::InvalidConstruction {
            what: "the later witness token needs strictly increasing step times",
        });
    }

    // 2. Choose the skew unit: far below any relevant gap.
    let mut min_gap = slack;
    for p in anchor_times.windows(2) {
        min_gap = min_gap.min(p[1] - p[0]);
    }
    // The wave steps a whisker before each anchor; no original step may fall
    // inside that whisker, so bound δ by the smallest positive gap between
    // any original step time and any anchor.
    for r in records {
        for &t in &r.step_times {
            for &anchor in anchor_times {
                let gap = anchor - t;
                if gap > 0.0 {
                    min_gap = min_gap.min(gap);
                }
            }
        }
    }
    let delta = min_gap / ((w as f64 + 2.0) * (depth as f64 + 2.0) * 1.0e6);

    // 3. Steer the wave. Track, per wave token (indexed by its input wire),
    //    the wire it currently occupies and its per-layer times.
    let val = Valencies::compute(net);
    let target_sink = tp.sink;
    let witness_wire = records[t_pos].input; // T's input wire i.
    let fresh_base = specs.iter().map(|s| s.process.index() + 1).max().unwrap_or(0);
    let witness_process = ProcessId(fresh_base + witness_wire);

    // Count, per balancer, the original steps before each anchor time, to
    // recover each balancer's state at the wave's insertion point.
    // steps_before[l][b] = number of original steps at balancer b with time
    // strictly below anchor_times[l].
    let mut wave_wire: Vec<WireId> =
        (0..w).map(|i| net.source_wire(SourceId(i))).collect();
    let mut wave_times: Vec<Vec<f64>> = vec![Vec::with_capacity(depth + 1); w];

    for (layer, &anchor) in anchor_times.iter().enumerate() {
        // Per-balancer arrival lists at this layer (wave tokens grouped by
        // the balancer / sink their current wire feeds).
        if layer < depth {
            // Balancer layer: compute each balancer's state at the insertion
            // point, then order arrivals so the witness-wire token exits
            // toward the target sink.
            let mut state_at = vec![0usize; net.size()];
            for ts in exec.steps() {
                if ts.time < anchor {
                    if let Step::Bal { balancer, .. } = ts.step {
                        state_at[balancer] += 1;
                    }
                }
            }
            // Group wave tokens by balancer.
            let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
                std::collections::BTreeMap::new();
            for (tok, &wire) in wave_wire.iter().enumerate() {
                match net.wire(wire).end {
                    WireEnd::Balancer { balancer, .. } => {
                        groups.entry(balancer.index()).or_default().push(tok);
                    }
                    WireEnd::Sink(_) => {
                        return Err(SimError::InvalidConstruction {
                            what: "wave token reached a sink before the last layer",
                        });
                    }
                }
            }
            // Assign per-balancer arrival order; give each token its skewed
            // time and its exit wire.
            let mut global_rank = 0usize;
            for (bal_idx, mut toks) in groups {
                let bal = cnet_topology::ids::BalancerId(bal_idx);
                let f = net.balancer(bal).fan_out();
                if toks.len() != f {
                    return Err(SimError::InvalidConstruction {
                        what: "wave does not cover a balancer's ports exactly",
                    });
                }
                let state = state_at[bal_idx] % f;
                // If the witness token (wave tokens are indexed by their
                // input wire) is here, place it at the rank that routes it
                // toward the target sink.
                if let Some(idx) = toks.iter().position(|&t| t == witness_wire) {
                    // Find an output port of this balancer from which the
                    // target sink is reachable.
                    let port = (0..f)
                        .find(|&p| val.output_port(net, bal, p).contains(target_sink))
                        .ok_or(SimError::InvalidConstruction {
                            what: "witness token strayed off every path to the target counter",
                        })?;
                    let rank = (port + f - state) % f;
                    let tok = toks.remove(idx);
                    toks.insert(rank, tok);
                }
                for (r, &tok) in toks.iter().enumerate() {
                    let out_port = (state + r) % f;
                    wave_wire[tok] = net.balancer(bal).output(out_port);
                    // Skew: earlier rank = earlier time, all strictly before
                    // the anchor.
                    let skew = delta * (w - global_rank - r) as f64;
                    wave_times[tok].push(anchor - skew);
                }
                global_rank += toks.len();
            }
        } else {
            // Counter layer: every wave token counts just before the anchor.
            for times in wave_times.iter_mut() {
                times.push(anchor - delta);
            }
        }
    }

    // The steered token must now sit on the wire into the target counter.
    let steered = (0..w)
        .find(|&tok| {
            wave_wire[tok] == net.sink_wire(SinkId(target_sink))
        })
        .ok_or(SimError::InvalidConstruction {
            what: "steering failed to deliver a wave token to the target counter",
        })?;
    if steered != witness_wire {
        return Err(SimError::InvalidConstruction {
            what: "steering delivered the wrong wave token to the target counter",
        });
    }

    // 4. Assemble the new spec list: originals with T relabeled, then the
    //    wave (one token per input wire; the witness-wire token belongs to
    //    the witness process).
    let mut new_specs = specs.to_vec();
    new_specs[t_pos].process = witness_process;
    let wave_base = new_specs.len();
    for (tok, tok_times) in wave_times.iter().enumerate() {
        let process =
            if tok == witness_wire { witness_process } else { ProcessId(fresh_base + tok) };
        // Fix up any non-monotone skew (possible only if anchors nearly
        // coincide; guarded by the strict-increase check above).
        let mut times = tok_times.clone();
        for l in 1..times.len() {
            if times[l] < times[l - 1] {
                times[l] = times[l - 1];
            }
        }
        new_specs.push(TimedTokenSpec { process, input: tok, step_times: times });
    }

    Ok(TransformOutcome {
        specs: new_specs,
        witness_process,
        earlier_token: TokenId(t_pos),
        wave_witness_token: TokenId(wave_base + witness_wire),
        earlier_value: records[t_pos].value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::bitonic_three_wave;
    use crate::engine::run;
    use crate::timing::TimingParams;
    use crate::workload::{generate, WorkloadConfig};
    use cnet_topology::construct::bitonic;

    /// A non-linearizable execution on B(4): a token finishing early gets a
    /// large value because a slow token is holding a small counter value.
    fn non_linearizable_exec(net: &cnet_topology::Network) -> (Vec<TimedTokenSpec>, TimedExecution) {
        // Token A crawls: passes all balancers fast (taking value slot at
        // sink 0) but counts very late.
        // Token B runs later but entirely within A's lifetime... we need a
        // token completely AFTER another with a SMALLER value:
        //   A enters at 0, counts at 100 (value 0 at its sink).
        //   B enters at 5, exits at 8 -> gets its sink's first value, which
        //   is larger than... we need B's value > some later token C.
        //   C enters at 10 (after B exits), routes to sink 0's... no: C must
        //   get a smaller value than B. Sink 0's value 0 goes to A. Use
        //   three tokens through one input:
        //   A: balancers at t=0..2 -> sink 0; counts at t=100 (value 0).
        //   B: balancers at t=3..5 -> sink 1; counts at 6 (value 1).
        //   C: enters at 7 (B completely precedes C), balancers t=7..9 ->
        //      sink 2; counts at 10 (value 2). Not smaller...
        // Simplest: reuse the three-wave construction, which is
        // non-linearizable by design — but give wave 3 a positive gap after
        // wave 2 (the transform's skew needs slack), small enough that wave 3
        // still overtakes wave 1 at this generous asynchrony ratio.
        let mut sched = bitonic_three_wave(net, 1.0, 10.0).unwrap();
        for i in sched.wave3.clone() {
            for t in &mut sched.specs[i].step_times {
                *t += 0.5;
            }
        }
        let exec = run(net, &sched.specs).unwrap();
        (sched.specs, exec)
    }

    fn is_seq_consistent(exec: &TimedExecution) -> bool {
        // Per process, values must increase in token order.
        let mut by_process: std::collections::BTreeMap<ProcessId, Vec<&crate::exec::TokenRecord>> =
            std::collections::BTreeMap::new();
        for r in exec.records() {
            by_process.entry(r.process).or_default().push(r);
        }
        by_process.values_mut().all(|rs| {
            rs.sort_by(|a, b| {
                a.enter_time.total_cmp(&b.enter_time).then(a.enter_seq.cmp(&b.enter_seq))
            });
            rs.windows(2).all(|p| p[0].value < p[1].value)
        })
    }

    #[test]
    fn transform_produces_non_sequentially_consistent_execution() {
        let net = bitonic(8).unwrap();
        // Start from a non-linearizable execution where each token has its
        // own process (so it IS sequentially consistent).
        let (mut specs, _) = non_linearizable_exec(&net);
        for (i, s) in specs.iter_mut().enumerate() {
            s.process = ProcessId(i); // one token per process
        }
        let exec = run(&net, &specs).unwrap();
        assert!(is_seq_consistent(&exec), "per-token processes: trivially SC");

        let outcome = desequentialize(&net, &specs, &exec).unwrap();
        let new_exec = run(&net, &outcome.specs).unwrap();
        assert!(!is_seq_consistent(&new_exec), "transformed execution must violate SC");

        // The witness process sees decreasing values.
        let witness_records: Vec<_> = new_exec
            .records()
            .iter()
            .filter(|r| r.process == outcome.witness_process)
            .collect();
        assert_eq!(witness_records.len(), 2);
        let wave = new_exec.record(outcome.wave_witness_token);
        assert!(wave.value < outcome.earlier_value);
    }

    #[test]
    fn transform_preserves_timing_parameters_up_to_skew() {
        let net = bitonic(8).unwrap();
        let (mut specs, _) = non_linearizable_exec(&net);
        for (i, s) in specs.iter_mut().enumerate() {
            s.process = ProcessId(i);
        }
        let exec = run(&net, &specs).unwrap();
        let before = TimingParams::measure(&exec);
        let outcome = desequentialize(&net, &specs, &exec).unwrap();
        let new_exec = run(&net, &outcome.specs).unwrap();
        let after = TimingParams::measure(&new_exec);
        let tol = 1.0e-3;
        assert!((before.c_min.unwrap() - after.c_min.unwrap()).abs() < tol);
        assert!((before.c_max.unwrap() - after.c_max.unwrap()).abs() < tol);
    }

    #[test]
    fn linearizable_execution_has_no_witness() {
        let net = bitonic(4).unwrap();
        let cfg = WorkloadConfig {
            processes: 4,
            tokens_per_process: 3,
            c_min: 1.0,
            c_max: 1.5, // ratio 1.5 <= 2: linearizable by LSST99 Cor 3.10
            local_delay: 1.0,
            start_spread: 2.0,
        };
        let specs = generate(&net, &cfg, 5);
        let exec = run(&net, &specs).unwrap();
        assert_eq!(desequentialize(&net, &specs, &exec), Err(SimError::NoWitnessPair));
    }

    #[test]
    fn irregular_network_is_rejected() {
        let net = cnet_topology::construct::counting_tree(4).unwrap();
        let exec = run(&net, &[]).unwrap();
        assert_eq!(
            desequentialize(&net, &[], &exec),
            Err(SimError::TransformNeedsRegularFan)
        );
    }
}
