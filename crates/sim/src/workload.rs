//! Randomized schedule generation inside a timing envelope.
//!
//! Sufficiency results (e.g. [LSST99, Cor. 3.7/3.10] and the paper's
//! Theorem 4.1) claim that *every* schedule satisfying a timing condition is
//! consistent. We exercise them by sampling many random schedules whose
//! per-wire delays and local inter-operation delays respect the envelope,
//! then asserting zero violations; the measured [`crate::TimingParams`] of
//! each generated execution confirm which conditions it satisfies.

use crate::ids::ProcessId;
use crate::spec::TimedTokenSpec;
use cnet_topology::Network;
use cnet_util::rng::{Rng, SeedableRng, StdRng};

/// Configuration of a randomized workload.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Number of processes; process `p` is assigned input wire
    /// `p mod fan_in`.
    pub processes: usize,
    /// Tokens issued by each process, back to back.
    pub tokens_per_process: usize,
    /// Lower bound for every per-wire delay.
    pub c_min: f64,
    /// Upper bound for every per-wire delay.
    pub c_max: f64,
    /// Minimum local inter-operation delay: after a token exits, the process
    /// waits at least this long (and at most twice this long, jittered)
    /// before its next token enters. Zero means immediate reentry.
    pub local_delay: f64,
    /// Each process's first token enters at a random time in
    /// `[0, start_spread]`.
    pub start_spread: f64,
}

/// Generates one token spec per `(process, round)`, deterministically from
/// the seed.
///
/// Per-wire delays are drawn uniformly from `[c_min, c_max]`; local gaps
/// from `[local_delay, 2·local_delay]` (exactly `local_delay` when it is 0).
///
/// # Panics
///
/// Panics if `c_min > c_max`, if either is negative, or if `local_delay` or
/// `start_spread` is negative.
///
/// # Example
///
/// ```
/// use cnet_topology::construct::bitonic;
/// use cnet_sim::workload::{WorkloadConfig, generate};
///
/// let net = bitonic(8)?;
/// let cfg = WorkloadConfig {
///     processes: 3,
///     tokens_per_process: 2,
///     c_min: 1.0,
///     c_max: 2.0,
///     local_delay: 0.0,
///     start_spread: 1.0,
/// };
/// let specs = generate(&net, &cfg, 7);
/// assert_eq!(specs.len(), 6);
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
pub fn generate(net: &Network, cfg: &WorkloadConfig, seed: u64) -> Vec<TimedTokenSpec> {
    assert!(
        cfg.c_min >= 0.0 && cfg.c_max >= cfg.c_min,
        "need 0 <= c_min <= c_max"
    );
    assert!(cfg.local_delay >= 0.0, "local_delay must be non-negative");
    assert!(cfg.start_spread >= 0.0, "start_spread must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let depth = net.depth();
    let mut specs = Vec::with_capacity(cfg.processes * cfg.tokens_per_process);
    for p in 0..cfg.processes {
        let process = ProcessId(p);
        let input = p % net.fan_in();
        let mut t = sample(&mut rng, 0.0, cfg.start_spread);
        for _ in 0..cfg.tokens_per_process {
            let delays: Vec<f64> =
                (0..depth).map(|_| sample(&mut rng, cfg.c_min, cfg.c_max)).collect();
            let spec = TimedTokenSpec::with_delays(process, input, t, &delays);
            t = spec.exit_time() + sample(&mut rng, cfg.local_delay, 2.0 * cfg.local_delay);
            specs.push(spec);
        }
    }
    specs
}

fn sample(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    if hi > lo {
        rng.random_range(lo..hi)
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::timing::TimingParams;
    use cnet_topology::construct::bitonic;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            processes: 5,
            tokens_per_process: 4,
            c_min: 1.0,
            c_max: 3.0,
            local_delay: 0.5,
            start_spread: 2.0,
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let net = bitonic(4).unwrap();
        let a = generate(&net, &cfg(), 9);
        let b = generate(&net, &cfg(), 9);
        assert_eq!(a, b);
        let c = generate(&net, &cfg(), 10);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_schedules_respect_the_envelope() {
        let net = bitonic(8).unwrap();
        for seed in 0..10 {
            let specs = generate(&net, &cfg(), seed);
            let exec = run(&net, &specs).unwrap();
            let p = TimingParams::measure(&exec);
            assert!(p.c_min.unwrap() >= 1.0);
            assert!(p.c_max.unwrap() < 3.0);
            assert!(p.local_delay.unwrap() >= 0.5);
        }
    }

    #[test]
    fn processes_share_input_wires_round_robin() {
        let net = bitonic(2).unwrap();
        let specs = generate(&net, &cfg(), 1);
        for s in &specs {
            assert_eq!(s.input, s.process.index() % 2);
        }
    }

    #[test]
    fn degenerate_envelope_is_lock_step() {
        let net = bitonic(4).unwrap();
        let mut c = cfg();
        c.c_min = 2.0;
        c.c_max = 2.0;
        c.local_delay = 0.0;
        c.start_spread = 0.0;
        let specs = generate(&net, &c, 3);
        for s in &specs {
            for w in s.step_times.windows(2) {
                assert_eq!(w[1] - w[0], 2.0);
            }
        }
        // All processes start at 0; consecutive tokens of a process are
        // back-to-back.
        let exec = run(&net, &specs).unwrap();
        let p = TimingParams::measure(&exec);
        assert_eq!(p.c_min, Some(2.0));
        assert_eq!(p.c_max, Some(2.0));
        assert_eq!(p.local_delay, Some(0.0));
    }

    #[test]
    #[should_panic(expected = "c_min <= c_max")]
    fn bad_envelope_panics() {
        let net = bitonic(2).unwrap();
        let mut c = cfg();
        c.c_min = 5.0;
        c.c_max = 1.0;
        generate(&net, &c, 0);
    }
}
