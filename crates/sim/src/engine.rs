//! The discrete-event replay engine.
//!
//! [`run`] takes a *uniform* network and one [`TimedTokenSpec`] per token and
//! replays every step in time order (ties broken by the token's position in
//! the spec slice, then by layer), applying the sequential `BAL`/`COUNT`
//! semantics of [`cnet_topology::state::NetworkState`]. The result is a
//! [`TimedExecution`] carrying the full step trace and one
//! [`TokenRecord`] per token.
//!
//! Uniformity matters: in a uniform network every source→sink path crosses
//! exactly one node per layer, so "the token's `l`-th step happens at time
//! `S(T, l)`" is well-defined *before* routing is known — the paper's notion
//! of a schedule (Section 2.3).

use crate::error::SimError;
use crate::exec::{Step, TimedExecution, TimedStep, TokenRecord};
use crate::ids::{ProcessId, TokenId};
use crate::spec::TimedTokenSpec;
use cnet_topology::ids::SourceId;
use cnet_topology::network::WireEnd;
use cnet_topology::state::NetworkState;
use cnet_topology::Network;
use std::collections::BTreeMap;

/// Replays the given token schedules through the network.
///
/// # Errors
///
/// * [`SimError::NotUniform`] — the network is not uniform.
/// * [`SimError::WrongStepCount`], [`SimError::DecreasingStepTimes`],
///   [`SimError::NonFiniteTime`], [`SimError::BadInputWire`] — a spec is
///   malformed.
/// * [`SimError::OverlappingProcessTokens`] — two tokens of the same process
///   overlap in time (execution condition 3 of Section 2.2).
///
/// # Example
///
/// ```
/// use cnet_topology::construct::bitonic;
/// use cnet_sim::spec::TimedTokenSpec;
/// use cnet_sim::ids::ProcessId;
/// use cnet_sim::engine::run;
///
/// let net = bitonic(2)?; // depth 1
/// let specs = vec![
///     TimedTokenSpec::lock_step(ProcessId(0), 0, 0.0, 1.0, 1),
///     TimedTokenSpec::lock_step(ProcessId(1), 1, 0.5, 1.0, 1),
/// ];
/// let exec = run(&net, &specs)?;
/// assert_eq!(exec.records()[0].value, 0); // first through the balancer
/// assert_eq!(exec.records()[1].value, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(net: &Network, specs: &[TimedTokenSpec]) -> Result<TimedExecution, SimError> {
    if !net.is_uniform() {
        return Err(SimError::NotUniform);
    }
    let depth = net.depth();
    validate(net, depth, specs)?;

    // One event per (token, layer), sorted by (time, token position, layer).
    let mut events: Vec<(f64, usize, usize)> = Vec::with_capacity(specs.len() * (depth + 1));
    for (pos, spec) in specs.iter().enumerate() {
        for (layer, &t) in spec.step_times.iter().enumerate() {
            events.push((t, pos, layer));
        }
    }
    events.sort_by(|a, b| {
        a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
    });

    let mut state = NetworkState::new(net);
    let mut wire: Vec<cnet_topology::ids::WireId> = specs
        .iter()
        .map(|s| net.source_wire(SourceId(s.input)))
        .collect();
    let mut steps: Vec<TimedStep> = Vec::with_capacity(events.len());
    let mut enter_seq = vec![0usize; specs.len()];
    let mut exit_seq = vec![0usize; specs.len()];
    let mut sink_of = vec![0usize; specs.len()];
    let mut value_of = vec![0u64; specs.len()];

    for (time, pos, layer) in events {
        let token = TokenId(pos);
        let process = specs[pos].process;
        let seq = steps.len();
        if layer == 0 {
            enter_seq[pos] = seq;
        }
        match net.wire(wire[pos]).end {
            WireEnd::Balancer { balancer, port } => {
                let out_port = state.balancer_step(net, balancer);
                steps.push(TimedStep {
                    time,
                    step: Step::Bal {
                        token,
                        process,
                        balancer: balancer.index(),
                        in_port: port,
                        out_port,
                    },
                });
                wire[pos] = net.balancer(balancer).output(out_port);
            }
            WireEnd::Sink(sink) => {
                let value = state.counter_step(net, sink);
                steps.push(TimedStep {
                    time,
                    step: Step::Count { token, process, sink: sink.index(), value },
                });
                exit_seq[pos] = seq;
                sink_of[pos] = sink.index();
                value_of[pos] = value;
            }
        }
    }

    let records: Vec<TokenRecord> = specs
        .iter()
        .enumerate()
        .map(|(pos, spec)| TokenRecord {
            token: TokenId(pos),
            process: spec.process,
            input: spec.input,
            enter_time: spec.enter_time(),
            exit_time: spec.exit_time(),
            enter_seq: enter_seq[pos],
            exit_seq: exit_seq[pos],
            sink: sink_of[pos],
            value: value_of[pos],
            step_times: spec.step_times.clone(),
        })
        .collect();

    Ok(TimedExecution::new(depth, net.fan_out(), steps, records))
}

/// Replays **adaptive** token schedules through any network — including
/// non-uniform ones, where a token's route length depends on its routing.
///
/// A true discrete-event simulation: an event queue keyed by
/// `(time, spec position, hop)` pops the earliest pending step; the token
/// takes it (balancer or counter, depending on where its wire leads), and —
/// if it is still inside the network — its next step is scheduled after the
/// next delay from its pool.
///
/// On uniform networks this agrees exactly with [`run`] applied to the
/// corresponding [`TimedTokenSpec`]s.
///
/// # Errors
///
/// * [`SimError::WrongStepCount`] — a token's delay pool is shorter than
///   the network depth (its route might be that long).
/// * [`SimError::NonFiniteTime`], [`SimError::BadInputWire`],
///   [`SimError::DecreasingStepTimes`] (negative delays),
///   [`SimError::OverlappingProcessTokens`] — as for [`run`], with the
///   overlap check using each token's *worst-case* exit time (entry plus
///   all depth delays), so the guarantee is schedule-independent.
pub fn run_adaptive(
    net: &Network,
    specs: &[crate::spec::AdaptiveTokenSpec],
) -> Result<TimedExecution, SimError> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let depth = net.depth();
    // Validation.
    for (pos, spec) in specs.iter().enumerate() {
        let token = TokenId(pos);
        if spec.delays.len() < depth {
            return Err(SimError::WrongStepCount {
                token,
                got: spec.delays.len(),
                want: depth,
            });
        }
        if !spec.enter_time.is_finite() || spec.delays.iter().any(|d| !d.is_finite()) {
            return Err(SimError::NonFiniteTime { token });
        }
        if spec.delays.iter().any(|&d| d < 0.0) {
            return Err(SimError::DecreasingStepTimes { token });
        }
        if spec.input >= net.fan_in() {
            return Err(SimError::BadInputWire { token, input: spec.input });
        }
    }
    // Worst-case exit times for the per-process overlap check.
    let worst_exit: Vec<f64> = specs
        .iter()
        .map(|s| s.enter_time + s.delays.iter().take(depth).sum::<f64>())
        .collect();
    {
        let mut by_process: BTreeMap<ProcessId, Vec<usize>> = BTreeMap::new();
        for (pos, spec) in specs.iter().enumerate() {
            by_process.entry(spec.process).or_default().push(pos);
        }
        for (process, mut positions) in by_process {
            positions.sort_by(|&a, &b| {
                specs[a].enter_time.total_cmp(&specs[b].enter_time).then(a.cmp(&b))
            });
            for pair in positions.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let ordered = worst_exit[a] < specs[b].enter_time
                    || (worst_exit[a] == specs[b].enter_time && a < b);
                if !ordered {
                    return Err(SimError::OverlappingProcessTokens {
                        process,
                        tokens: (TokenId(a), TokenId(b)),
                    });
                }
            }
        }
    }

    /// Heap key ordered by (time, spec position, hop); `f64` wrapped for a
    /// total order (times validated finite above).
    #[derive(PartialEq)]
    struct Key(f64, usize, usize);
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1)).then(self.2.cmp(&other.2))
        }
    }

    let mut queue: BinaryHeap<Reverse<Key>> = specs
        .iter()
        .enumerate()
        .map(|(pos, s)| Reverse(Key(s.enter_time, pos, 0)))
        .collect();
    let mut state = NetworkState::new(net);
    let mut wire: Vec<cnet_topology::ids::WireId> =
        specs.iter().map(|s| net.source_wire(SourceId(s.input))).collect();
    let mut steps: Vec<TimedStep> = Vec::new();
    let mut enter_seq = vec![0usize; specs.len()];
    let mut exit_seq = vec![0usize; specs.len()];
    let mut sink_of = vec![0usize; specs.len()];
    let mut value_of = vec![0u64; specs.len()];
    let mut times_of: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];

    while let Some(Reverse(Key(time, pos, hop))) = queue.pop() {
        let token = TokenId(pos);
        let process = specs[pos].process;
        let seq = steps.len();
        if hop == 0 {
            enter_seq[pos] = seq;
        }
        times_of[pos].push(time);
        match net.wire(wire[pos]).end {
            WireEnd::Balancer { balancer, port } => {
                let out_port = state.balancer_step(net, balancer);
                steps.push(TimedStep {
                    time,
                    step: Step::Bal {
                        token,
                        process,
                        balancer: balancer.index(),
                        in_port: port,
                        out_port,
                    },
                });
                wire[pos] = net.balancer(balancer).output(out_port);
                queue.push(Reverse(Key(time + specs[pos].delays[hop], pos, hop + 1)));
            }
            WireEnd::Sink(sink) => {
                let value = state.counter_step(net, sink);
                steps.push(TimedStep {
                    time,
                    step: Step::Count { token, process, sink: sink.index(), value },
                });
                exit_seq[pos] = seq;
                sink_of[pos] = sink.index();
                value_of[pos] = value;
            }
        }
    }

    let records: Vec<TokenRecord> = specs
        .iter()
        .enumerate()
        .map(|(pos, spec)| TokenRecord {
            token: TokenId(pos),
            process: spec.process,
            input: spec.input,
            enter_time: times_of[pos][0],
            exit_time: *times_of[pos].last().expect("every token takes at least one step"),
            enter_seq: enter_seq[pos],
            exit_seq: exit_seq[pos],
            sink: sink_of[pos],
            value: value_of[pos],
            step_times: times_of[pos].clone(),
        })
        .collect();

    Ok(TimedExecution::new(depth, net.fan_out(), steps, records))
}

fn validate(net: &Network, depth: usize, specs: &[TimedTokenSpec]) -> Result<(), SimError> {
    for (pos, spec) in specs.iter().enumerate() {
        let token = TokenId(pos);
        if spec.step_times.len() != depth + 1 {
            return Err(SimError::WrongStepCount {
                token,
                got: spec.step_times.len(),
                want: depth + 1,
            });
        }
        if spec.step_times.iter().any(|t| !t.is_finite()) {
            return Err(SimError::NonFiniteTime { token });
        }
        if spec.step_times.windows(2).any(|w| w[0] > w[1]) {
            return Err(SimError::DecreasingStepTimes { token });
        }
        if spec.input >= net.fan_in() {
            return Err(SimError::BadInputWire { token, input: spec.input });
        }
    }
    // Per process: tokens must be totally ordered (no overlap). Two tokens of
    // one process are ordered iff the earlier one's last step sorts before
    // the later one's first step under the (time, position) event order.
    let mut by_process: BTreeMap<ProcessId, Vec<usize>> = BTreeMap::new();
    for (pos, spec) in specs.iter().enumerate() {
        by_process.entry(spec.process).or_default().push(pos);
    }
    for (process, mut positions) in by_process {
        positions.sort_by(|&a, &b| {
            specs[a]
                .enter_time()
                .total_cmp(&specs[b].enter_time())
                .then(a.cmp(&b))
        });
        for pair in positions.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let a_exit = specs[a].exit_time();
            let b_enter = specs[b].enter_time();
            let ordered = a_exit < b_enter || (a_exit == b_enter && a < b);
            if !ordered {
                return Err(SimError::OverlappingProcessTokens {
                    process,
                    tokens: (TokenId(a), TokenId(b)),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_topology::construct::{bitonic, counting_tree, identity};
    use cnet_topology::LayeredBuilder;

    fn spec(p: usize, input: usize, times: &[f64]) -> TimedTokenSpec {
        TimedTokenSpec { process: ProcessId(p), input, step_times: times.to_vec() }
    }

    #[test]
    fn single_token_traverses_and_counts() {
        let net = bitonic(4).unwrap(); // depth 3
        let specs = vec![spec(0, 0, &[0.0, 1.0, 2.0, 3.0])];
        let exec = run(&net, &specs).unwrap();
        assert_eq!(exec.steps().len(), 4);
        let r = &exec.records()[0];
        assert_eq!(r.value, 0);
        assert_eq!(r.sink, 0);
        assert_eq!(r.enter_time, 0.0);
        assert_eq!(r.exit_time, 3.0);
        assert_eq!(r.enter_seq, 0);
        assert_eq!(r.exit_seq, 3);
    }

    #[test]
    fn time_order_determines_values() {
        let net = bitonic(2).unwrap();
        // Token 1 (listed second) runs earlier in time, so it gets value 0.
        let specs = vec![
            spec(0, 0, &[5.0, 6.0]),
            spec(1, 1, &[0.0, 1.0]),
        ];
        let exec = run(&net, &specs).unwrap();
        assert_eq!(exec.records()[0].value, 1);
        assert_eq!(exec.records()[1].value, 0);
    }

    #[test]
    fn ties_broken_by_slice_position() {
        let net = bitonic(2).unwrap();
        let specs = vec![
            spec(0, 0, &[0.0, 1.0]),
            spec(1, 1, &[0.0, 1.0]),
        ];
        let exec = run(&net, &specs).unwrap();
        // Same times: position 0 steps first at each node.
        assert_eq!(exec.records()[0].value, 0);
        assert_eq!(exec.records()[1].value, 1);
    }

    #[test]
    fn overtaking_inside_the_network() {
        // Two tokens on the same input of B(2): the first is slow, the second
        // starts later but arrives at the counter first... they share the
        // balancer, so the first to reach the *balancer* wins the top wire.
        let net = bitonic(2).unwrap();
        let specs = vec![
            spec(0, 0, &[0.0, 100.0]), // slow wire to the counter
            spec(1, 1, &[1.0, 2.0]),
        ];
        let exec = run(&net, &specs).unwrap();
        // Token 0 passed the balancer first -> sink 0, but counts later; the
        // values come from different counters so both get their sink's first
        // value.
        assert_eq!(exec.records()[0].sink, 0);
        assert_eq!(exec.records()[1].sink, 1);
        assert_eq!(exec.records()[0].value, 0);
        assert_eq!(exec.records()[1].value, 1);
    }

    #[test]
    fn identity_network_counts_by_arrival() {
        let net = identity(2).unwrap(); // depth 0: specs have 1 step time
        let specs = vec![spec(0, 1, &[3.0]), spec(1, 1, &[1.0])];
        // both tokens on input wire 1 -> same counter; wire 1's counter
        // hands out 1, then 3.
        let exec = run(&net, &specs).unwrap();
        assert_eq!(exec.records()[1].value, 1);
        assert_eq!(exec.records()[0].value, 3);
    }

    #[test]
    fn tree_round_robins_under_time_order() {
        let net = counting_tree(4).unwrap(); // depth 2
        let specs: Vec<_> = (0..8)
            .map(|k| spec(k, 0, &[k as f64, k as f64 + 0.5, k as f64 + 1.0]))
            .collect();
        let exec = run(&net, &specs).unwrap();
        for (k, r) in exec.records().iter().enumerate() {
            assert_eq!(r.value, k as u64);
            assert_eq!(r.sink, k % 4);
        }
    }

    #[test]
    fn non_uniform_network_is_rejected() {
        let mut lb = LayeredBuilder::new(3);
        lb.balancer(&[0, 1]);
        let net = lb.finish().unwrap();
        let err = run(&net, &[]).unwrap_err();
        assert_eq!(err, SimError::NotUniform);
    }

    #[test]
    fn wrong_step_count_is_rejected() {
        let net = bitonic(4).unwrap();
        let err = run(&net, &[spec(0, 0, &[0.0, 1.0])]).unwrap_err();
        assert!(matches!(err, SimError::WrongStepCount { want: 4, got: 2, .. }));
    }

    #[test]
    fn decreasing_times_are_rejected() {
        let net = bitonic(2).unwrap();
        let err = run(&net, &[spec(0, 0, &[1.0, 0.5])]).unwrap_err();
        assert!(matches!(err, SimError::DecreasingStepTimes { .. }));
    }

    #[test]
    fn non_finite_times_are_rejected() {
        let net = bitonic(2).unwrap();
        let err = run(&net, &[spec(0, 0, &[0.0, f64::NAN])]).unwrap_err();
        assert!(matches!(err, SimError::NonFiniteTime { .. }));
    }

    #[test]
    fn bad_input_wire_is_rejected() {
        let net = bitonic(2).unwrap();
        let err = run(&net, &[spec(0, 5, &[0.0, 1.0])]).unwrap_err();
        assert!(matches!(err, SimError::BadInputWire { input: 5, .. }));
    }

    #[test]
    fn overlapping_tokens_of_one_process_are_rejected() {
        let net = bitonic(2).unwrap();
        let specs = vec![
            spec(0, 0, &[0.0, 10.0]),
            spec(0, 0, &[5.0, 6.0]),
        ];
        let err = run(&net, &specs).unwrap_err();
        assert!(matches!(err, SimError::OverlappingProcessTokens { .. }));
    }

    #[test]
    fn back_to_back_tokens_of_one_process_are_accepted() {
        let net = bitonic(2).unwrap();
        // Second token enters exactly when the first exits; position order
        // resolves the tie.
        let specs = vec![
            spec(0, 0, &[0.0, 1.0]),
            spec(0, 0, &[1.0, 2.0]),
        ];
        let exec = run(&net, &specs).unwrap();
        assert!(exec.records()[0].completely_precedes(&exec.records()[1]));
    }

    #[test]
    fn adaptive_agrees_with_layered_engine_on_uniform_networks() {
        use crate::spec::AdaptiveTokenSpec;
        use crate::workload::{generate, WorkloadConfig};
        let net = bitonic(8).unwrap();
        let cfg = WorkloadConfig {
            processes: 6,
            tokens_per_process: 5,
            c_min: 0.5,
            c_max: 4.0,
            local_delay: 0.1,
            start_spread: 2.0,
        };
        for seed in 0..10 {
            let specs = generate(&net, &cfg, seed);
            let adaptive: Vec<AdaptiveTokenSpec> = specs.iter().map(Into::into).collect();
            let a = run(&net, &specs).unwrap();
            let b = run_adaptive(&net, &adaptive).unwrap();
            for (ra, rb) in a.records().iter().zip(b.records()) {
                assert_eq!(ra.value, rb.value, "seed {seed}");
                assert_eq!(ra.sink, rb.sink, "seed {seed}");
            }
        }
    }

    #[test]
    fn adaptive_runs_non_uniform_networks() {
        use crate::spec::AdaptiveTokenSpec;
        use cnet_topology::construct::append_adjacent_balancer;
        let base = bitonic(4).unwrap();
        let net = append_adjacent_balancer(&base, 1).unwrap();
        assert!(!net.is_uniform());
        let specs: Vec<AdaptiveTokenSpec> = (0..20)
            .map(|k| {
                AdaptiveTokenSpec::lock_step(
                    ProcessId(k),
                    k % 4,
                    k as f64 * 0.3,
                    1.0,
                    net.depth(),
                )
            })
            .collect();
        let exec = run_adaptive(&net, &specs).unwrap();
        let mut values = exec.values();
        values.sort_unstable();
        assert_eq!(values, (0..20).collect::<Vec<_>>());
        // Tokens routed through the extra balancer took one more hop.
        let lens: Vec<usize> = exec.records().iter().map(|r| r.step_times.len()).collect();
        assert!(lens.iter().any(|&l| l == net.depth() + 1));
        assert!(lens.iter().any(|&l| l == net.depth()));
        // The independent validator accepts the execution.
        crate::validate::validate(&net, &exec).unwrap();
    }

    #[test]
    fn adaptive_rejects_short_delay_pools_and_negative_delays() {
        use crate::spec::AdaptiveTokenSpec;
        let net = bitonic(4).unwrap(); // depth 3
        let short = AdaptiveTokenSpec {
            process: ProcessId(0),
            input: 0,
            enter_time: 0.0,
            delays: vec![1.0, 1.0],
        };
        assert!(matches!(
            run_adaptive(&net, &[short]).unwrap_err(),
            SimError::WrongStepCount { .. }
        ));
        let negative = AdaptiveTokenSpec {
            process: ProcessId(0),
            input: 0,
            enter_time: 0.0,
            delays: vec![1.0, -1.0, 1.0],
        };
        assert!(matches!(
            run_adaptive(&net, &[negative]).unwrap_err(),
            SimError::DecreasingStepTimes { .. }
        ));
    }

    #[test]
    fn adaptive_rejects_worst_case_overlap() {
        use crate::spec::AdaptiveTokenSpec;
        let net = bitonic(2).unwrap();
        let specs = vec![
            AdaptiveTokenSpec::lock_step(ProcessId(0), 0, 0.0, 5.0, 1),
            AdaptiveTokenSpec::lock_step(ProcessId(0), 0, 2.0, 1.0, 1),
        ];
        assert!(matches!(
            run_adaptive(&net, &specs).unwrap_err(),
            SimError::OverlappingProcessTokens { .. }
        ));
    }

    #[test]
    fn values_are_gap_free_under_any_schedule() {
        let net = bitonic(8).unwrap();
        let d = net.depth();
        let specs: Vec<_> = (0..40)
            .map(|k| {
                TimedTokenSpec::lock_step(
                    ProcessId(k),
                    k % 8,
                    (k as f64) * 0.37,
                    1.0 + (k % 3) as f64,
                    d,
                )
            })
            .collect();
        let exec = run(&net, &specs).unwrap();
        let mut vs = exec.values();
        vs.sort_unstable();
        assert_eq!(vs, (0..40).collect::<Vec<_>>());
    }
}
