//! Timing parameters of a schedule (Section 2.3).
//!
//! Given a [`TimedExecution`], [`TimingParams::measure`] computes the
//! paper's six timing parameters:
//!
//! * `c_min`, `c_max` — extreme wire delays over all tokens and layers;
//! * `c_min^P` — per-process minimum wire delay;
//! * `C_L^P` — per-process minimum local inter-operation delay;
//! * `C_L` — minimum local inter-operation delay over all processes;
//! * `C_g` — minimum global delay between non-overlapping tokens.
//!
//! Parameters that quantify over an empty set (e.g. `C_g` in an execution
//! where every pair of tokens overlaps) are reported as `None`, read as
//! "unconstrained / +∞" by the condition predicates in `cnet-core`.

use crate::exec::{TimedExecution, TokenRecord};
use crate::ids::ProcessId;
use cnet_util::json_struct;
use std::collections::BTreeMap;

/// Per-process timing measurements.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct ProcessTiming {
    /// `c_min^P`: the minimum wire delay over this process's tokens.
    pub c_min: Option<f64>,
    /// `C_L^P`: the minimum gap between one of this process's tokens exiting
    /// and its next token entering.
    pub local_delay: Option<f64>,
}

json_struct!(ProcessTiming { c_min, local_delay });

/// The timing parameters measured over one timed execution.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TimingParams {
    /// `c_min`: minimum wire delay over all tokens and layers.
    pub c_min: Option<f64>,
    /// `c_max`: maximum wire delay over all tokens and layers.
    pub c_max: Option<f64>,
    /// `C_L`: minimum local inter-operation delay over all processes.
    pub local_delay: Option<f64>,
    /// `C_g`: minimum delay between any two non-overlapping tokens.
    pub global_delay: Option<f64>,
    /// Per-process measurements, keyed by process.
    pub per_process: BTreeMap<ProcessId, ProcessTiming>,
}

json_struct!(TimingParams { c_min, c_max, local_delay, global_delay, per_process });

impl TimingParams {
    /// Measures all timing parameters of an execution.
    ///
    /// # Example
    ///
    /// ```
    /// use cnet_topology::construct::bitonic;
    /// use cnet_sim::{engine::run, spec::TimedTokenSpec, ids::ProcessId};
    /// use cnet_sim::timing::TimingParams;
    ///
    /// let net = bitonic(2)?;
    /// let specs = vec![
    ///     TimedTokenSpec::lock_step(ProcessId(0), 0, 0.0, 1.0, 1),
    ///     TimedTokenSpec::lock_step(ProcessId(0), 0, 3.0, 2.0, 1),
    /// ];
    /// let exec = run(&net, &specs)?;
    /// let p = TimingParams::measure(&exec);
    /// assert_eq!(p.c_min, Some(1.0));
    /// assert_eq!(p.c_max, Some(2.0));
    /// assert_eq!(p.local_delay, Some(2.0)); // exits at 1.0, re-enters at 3.0
    /// assert_eq!(p.global_delay, Some(2.0));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn measure(exec: &TimedExecution) -> TimingParams {
        let mut params = TimingParams::default();
        for record in exec.records() {
            let entry = params.per_process.entry(record.process).or_default();
            for pair in record.step_times.windows(2) {
                let delay = pair[1] - pair[0];
                params.c_min = Some(params.c_min.map_or(delay, |m| m.min(delay)));
                params.c_max = Some(params.c_max.map_or(delay, |m| m.max(delay)));
                entry.c_min = Some(entry.c_min.map_or(delay, |m| m.min(delay)));
            }
        }
        // Local inter-operation delays: consecutive tokens of each process.
        let mut by_process: BTreeMap<ProcessId, Vec<&TokenRecord>> = BTreeMap::new();
        for record in exec.records() {
            by_process.entry(record.process).or_default().push(record);
        }
        for (process, mut records) in by_process {
            records.sort_by(|a, b| {
                a.enter_time.total_cmp(&b.enter_time).then(a.enter_seq.cmp(&b.enter_seq))
            });
            for pair in records.windows(2) {
                let gap = pair[1].enter_time - pair[0].exit_time;
                let entry = params.per_process.entry(process).or_default();
                entry.local_delay = Some(entry.local_delay.map_or(gap, |m| m.min(gap)));
                params.local_delay =
                    Some(params.local_delay.map_or(gap, |m| m.min(gap)));
            }
        }
        params.global_delay = global_delay(exec.records());
        params
    }

    /// The asynchrony ratio `c_max / c_min`, or `None` when undefined
    /// (no wire delays, or `c_min = 0`).
    pub fn ratio(&self) -> Option<f64> {
        match (self.c_min, self.c_max) {
            (Some(min), Some(max)) if min > 0.0 => Some(max / min),
            _ => None,
        }
    }
}

/// Concurrency statistics of an execution: how many tokens were inside the
/// network simultaneously.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct ConcurrencyProfile {
    /// The maximum number of tokens in flight at any instant.
    pub max_in_flight: usize,
    /// Time-averaged tokens in flight over the execution's span (0 for an
    /// empty or instantaneous execution).
    pub avg_in_flight: f64,
}

json_struct!(ConcurrencyProfile { max_in_flight, avg_in_flight });

/// Computes the concurrency profile by sweeping token intervals.
///
/// Local inter-operation delay is the paper's lever over exactly this
/// quantity (\[SUZ98\] studies the performance side): larger `C_L` thins the
/// in-flight population, which is why it can buy consistency.
///
/// # Example
///
/// ```
/// use cnet_topology::construct::bitonic;
/// use cnet_sim::{engine::run, spec::TimedTokenSpec, ids::ProcessId};
/// use cnet_sim::timing::concurrency_profile;
///
/// let net = bitonic(2)?;
/// let specs = vec![
///     TimedTokenSpec::lock_step(ProcessId(0), 0, 0.0, 2.0, 1),
///     TimedTokenSpec::lock_step(ProcessId(1), 1, 1.0, 2.0, 1),
/// ];
/// let profile = concurrency_profile(&run(&net, &specs)?);
/// assert_eq!(profile.max_in_flight, 2); // they overlap on [1, 2]
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn concurrency_profile(exec: &TimedExecution) -> ConcurrencyProfile {
    let records = exec.records();
    if records.is_empty() {
        return ConcurrencyProfile::default();
    }
    // Sweep entry/exit events; a token occupies [enter_time, exit_time].
    let mut events: Vec<(f64, i64)> = Vec::with_capacity(2 * records.len());
    for r in records {
        events.push((r.enter_time, 1));
        events.push((r.exit_time, -1));
    }
    // Exits before entries at equal times (half-open intervals).
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let span_start = events.first().expect("non-empty").0;
    let span_end = events.last().expect("non-empty").0;
    let mut in_flight: i64 = 0;
    let mut max_in_flight: i64 = 0;
    let mut weighted: f64 = 0.0;
    let mut prev_time = span_start;
    for (time, delta) in events {
        weighted += in_flight as f64 * (time - prev_time);
        prev_time = time;
        in_flight += delta;
        max_in_flight = max_in_flight.max(in_flight);
    }
    let span = span_end - span_start;
    ConcurrencyProfile {
        max_in_flight: max_in_flight as usize,
        avg_in_flight: if span > 0.0 { weighted / span } else { 0.0 },
    }
}

/// `C_g`: the minimum, over ordered pairs of tokens `(a, b)` where `a`
/// completely precedes `b`, of `b.enter_time − a.exit_time`. Computed with a
/// sweep in `O(n log n)`.
fn global_delay(records: &[TokenRecord]) -> Option<f64> {
    if records.len() < 2 {
        return None;
    }
    // b-sweep in enter order; a-pointer in exit order. `a` is eligible for
    // `b` when (a.exit_time, a.exit_seq) < (b.enter_time, b.enter_seq); as
    // b's enter key grows, eligibility only grows, and the binding gap for a
    // given b comes from the eligible a with the largest exit time.
    let mut by_enter: Vec<&TokenRecord> = records.iter().collect();
    by_enter.sort_by(|a, b| {
        a.enter_time.total_cmp(&b.enter_time).then(a.enter_seq.cmp(&b.enter_seq))
    });
    let mut by_exit: Vec<&TokenRecord> = records.iter().collect();
    by_exit.sort_by(|a, b| {
        a.exit_time.total_cmp(&b.exit_time).then(a.exit_seq.cmp(&b.exit_seq))
    });

    let mut best: Option<f64> = None;
    let mut max_exit: Option<f64> = None;
    let mut ai = 0;
    for b in by_enter {
        while ai < by_exit.len() {
            let a = by_exit[ai];
            let eligible = (a.exit_time, a.exit_seq) < (b.enter_time, b.enter_seq);
            if !eligible {
                break;
            }
            max_exit = Some(max_exit.map_or(a.exit_time, |m: f64| m.max(a.exit_time)));
            ai += 1;
        }
        if let Some(me) = max_exit {
            let gap = b.enter_time - me;
            best = Some(best.map_or(gap, |m| m.min(gap)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::spec::TimedTokenSpec;
    use cnet_topology::construct::bitonic;

    fn exec_of(specs: Vec<TimedTokenSpec>) -> TimedExecution {
        let net = bitonic(4).unwrap(); // depth 3
        run(&net, &specs).unwrap()
    }

    #[test]
    fn wire_delay_extremes() {
        let exec = exec_of(vec![
            TimedTokenSpec::with_delays(ProcessId(0), 0, 0.0, &[1.0, 3.0, 2.0]),
            TimedTokenSpec::with_delays(ProcessId(1), 1, 0.0, &[0.5, 0.5, 0.5]),
        ]);
        let p = TimingParams::measure(&exec);
        assert_eq!(p.c_min, Some(0.5));
        assert_eq!(p.c_max, Some(3.0));
        assert_eq!(p.per_process[&ProcessId(0)].c_min, Some(1.0));
        assert_eq!(p.per_process[&ProcessId(1)].c_min, Some(0.5));
        assert_eq!(p.ratio(), Some(6.0));
    }

    #[test]
    fn local_delay_per_process() {
        let exec = exec_of(vec![
            // p0: exits at 3.0, next enters at 5.0 -> gap 2.0
            TimedTokenSpec::with_delays(ProcessId(0), 0, 0.0, &[1.0, 1.0, 1.0]),
            TimedTokenSpec::with_delays(ProcessId(0), 0, 5.0, &[1.0, 1.0, 1.0]),
            // p1: single token, no local gap
            TimedTokenSpec::with_delays(ProcessId(1), 1, 0.0, &[1.0, 1.0, 1.0]),
        ]);
        let p = TimingParams::measure(&exec);
        assert_eq!(p.local_delay, Some(2.0));
        assert_eq!(p.per_process[&ProcessId(0)].local_delay, Some(2.0));
        assert_eq!(p.per_process[&ProcessId(1)].local_delay, None);
    }

    #[test]
    fn global_delay_over_disjoint_pairs() {
        let exec = exec_of(vec![
            // a: [0, 3]
            TimedTokenSpec::with_delays(ProcessId(0), 0, 0.0, &[1.0, 1.0, 1.0]),
            // b: [10, 13] -> gap to a is 7
            TimedTokenSpec::with_delays(ProcessId(1), 1, 10.0, &[1.0, 1.0, 1.0]),
            // c: [4, 7] -> gap to a is 1; b - c gap is 3
            TimedTokenSpec::with_delays(ProcessId(2), 2, 4.0, &[1.0, 1.0, 1.0]),
        ]);
        let p = TimingParams::measure(&exec);
        assert_eq!(p.global_delay, Some(1.0));
    }

    #[test]
    fn overlapping_tokens_do_not_constrain_global_delay() {
        let exec = exec_of(vec![
            TimedTokenSpec::with_delays(ProcessId(0), 0, 0.0, &[1.0, 1.0, 1.0]),
            TimedTokenSpec::with_delays(ProcessId(1), 1, 1.0, &[1.0, 1.0, 1.0]),
        ]);
        let p = TimingParams::measure(&exec);
        assert_eq!(p.global_delay, None);
        assert_eq!(p.local_delay, None);
    }

    #[test]
    fn empty_execution_has_no_parameters() {
        let exec = exec_of(vec![]);
        let p = TimingParams::measure(&exec);
        assert_eq!(p, TimingParams::default());
        assert_eq!(p.ratio(), None);
    }

    #[test]
    fn zero_c_min_has_no_ratio() {
        let exec = exec_of(vec![TimedTokenSpec::with_delays(
            ProcessId(0),
            0,
            0.0,
            &[0.0, 1.0, 1.0],
        )]);
        let p = TimingParams::measure(&exec);
        assert_eq!(p.c_min, Some(0.0));
        assert_eq!(p.ratio(), None);
    }

    #[test]
    fn concurrency_profile_counts_overlaps() {
        use super::concurrency_profile;
        // Three tokens: two overlapping, one later and disjoint.
        let exec = exec_of(vec![
            TimedTokenSpec::with_delays(ProcessId(0), 0, 0.0, &[1.0, 1.0, 2.0]), // [0,4]
            TimedTokenSpec::with_delays(ProcessId(1), 1, 1.0, &[1.0, 1.0, 1.0]), // [1,4]
            TimedTokenSpec::with_delays(ProcessId(2), 2, 6.0, &[1.0, 1.0, 1.0]), // [6,9]
        ]);
        let p = concurrency_profile(&exec);
        assert_eq!(p.max_in_flight, 2);
        // Occupancy: [0,1): 1; [1,4): 2; [4,6): 0; [6,9): 3... no: one token
        // on [6,9). Weighted = 1*1 + 2*3 + 0*2 + 1*3 = 10 over span 9.
        assert!((p.avg_in_flight - 10.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn concurrency_profile_of_serialized_execution_is_one() {
        use super::concurrency_profile;
        let exec = exec_of(vec![
            TimedTokenSpec::with_delays(ProcessId(0), 0, 0.0, &[1.0, 1.0, 1.0]),
            TimedTokenSpec::with_delays(ProcessId(1), 1, 5.0, &[1.0, 1.0, 1.0]),
        ]);
        let p = concurrency_profile(&exec);
        assert_eq!(p.max_in_flight, 1);
        assert!(p.avg_in_flight <= 1.0);
    }

    #[test]
    fn concurrency_profile_of_empty_execution() {
        use super::concurrency_profile;
        let exec = exec_of(vec![]);
        assert_eq!(concurrency_profile(&exec), super::ConcurrencyProfile::default());
    }

    #[test]
    fn timing_params_round_trip_through_json() {
        use cnet_util::json;
        let exec = exec_of(vec![
            TimedTokenSpec::with_delays(ProcessId(0), 0, 0.0, &[1.0, 3.0, 2.0]),
            TimedTokenSpec::with_delays(ProcessId(1), 1, 9.0, &[0.5, 0.5, 0.5]),
        ]);
        let p = TimingParams::measure(&exec);
        assert!(!p.per_process.is_empty());
        let back: TimingParams = json::from_str(&json::to_string(&p)).unwrap();
        assert_eq!(p, back);
        // Defaults (all-None) survive too.
        let empty: TimingParams =
            json::from_str(&json::to_string(&TimingParams::default())).unwrap();
        assert_eq!(empty, TimingParams::default());
        let profile = concurrency_profile(&exec);
        let back: ConcurrencyProfile = json::from_str(&json::to_string(&profile)).unwrap();
        assert_eq!(profile, back);
    }

    #[test]
    fn global_delay_can_be_negative_only_never() {
        // Back-to-back tokens: gap 0, not negative.
        let exec = exec_of(vec![
            TimedTokenSpec::with_delays(ProcessId(0), 0, 0.0, &[1.0, 1.0, 1.0]),
            TimedTokenSpec::with_delays(ProcessId(0), 0, 3.0, &[1.0, 1.0, 1.0]),
        ]);
        let p = TimingParams::measure(&exec);
        assert_eq!(p.global_delay, Some(0.0));
        assert_eq!(p.local_delay, Some(0.0));
    }
}
