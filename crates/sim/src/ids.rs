//! Identifiers for processes and tokens.

use cnet_util::json::{JsonError, JsonMapKey};
use cnet_util::json_newtype;
use std::fmt;

/// Identifies one of the (unboundedly many) processes of the distributed
/// system. Each process is statically assigned to one input wire of the
/// network and issues tokens one at a time (a process's tokens never overlap
/// in time).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(pub usize);

json_newtype!(ProcessId: usize);

// Serialized as a member name in per-process maps (`{"0": {...}}`), like
// serde_json's integer-keyed maps.
impl JsonMapKey for ProcessId {
    fn to_key(&self) -> String {
        self.0.to_string()
    }

    fn from_key(s: &str) -> Result<Self, JsonError> {
        usize::from_key(s).map(ProcessId)
    }
}

impl ProcessId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies a token (one increment operation) within a timed execution.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TokenId(pub usize);

json_newtype!(TokenId: usize);

impl TokenId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ProcessId(3).to_string(), "p3");
        assert_eq!(TokenId(0).to_string(), "T0");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(ProcessId(1) < ProcessId(2));
        assert!(TokenId(9) > TokenId(3));
    }
}
