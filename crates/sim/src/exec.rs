//! Timed executions: step traces and per-token operation records.

use crate::ids::{ProcessId, TokenId};
use cnet_util::json::{self, FromJson, JsonError, ToJson, Value};
use cnet_util::json_struct;

/// A transition step of the execution (Section 2.2): either a token crossing
/// a balancer or a token obtaining a value at a counter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Step {
    /// The paper's `BAL_p(T, B, i, j)`.
    Bal {
        /// The token taking the step.
        token: TokenId,
        /// The process shepherding it.
        process: ProcessId,
        /// The balancer traversed (index into the network).
        balancer: usize,
        /// Input port entered on.
        in_port: usize,
        /// Output port exited on.
        out_port: usize,
    },
    /// The paper's `COUNT_p(T, C, v)`.
    Count {
        /// The token taking the step.
        token: TokenId,
        /// The process shepherding it.
        process: ProcessId,
        /// The sink (counter) traversed.
        sink: usize,
        /// The value assigned.
        value: u64,
    },
}

// Externally tagged, like serde: {"Bal": {...}} / {"Count": {...}}. The
// tamper tests in `validate` navigate this exact shape.
impl ToJson for Step {
    fn to_json(&self) -> Value {
        match *self {
            Step::Bal { token, process, balancer, in_port, out_port } => Value::Object(vec![(
                "Bal".to_string(),
                Value::Object(vec![
                    ("token".to_string(), token.to_json()),
                    ("process".to_string(), process.to_json()),
                    ("balancer".to_string(), balancer.to_json()),
                    ("in_port".to_string(), in_port.to_json()),
                    ("out_port".to_string(), out_port.to_json()),
                ]),
            )]),
            Step::Count { token, process, sink, value } => Value::Object(vec![(
                "Count".to_string(),
                Value::Object(vec![
                    ("token".to_string(), token.to_json()),
                    ("process".to_string(), process.to_json()),
                    ("sink".to_string(), sink.to_json()),
                    ("value".to_string(), value.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for Step {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        if let Some(b) = v.get("Bal") {
            Ok(Step::Bal {
                token: json::field(b, "token")?,
                process: json::field(b, "process")?,
                balancer: json::field(b, "balancer")?,
                in_port: json::field(b, "in_port")?,
                out_port: json::field(b, "out_port")?,
            })
        } else if let Some(c) = v.get("Count") {
            Ok(Step::Count {
                token: json::field(c, "token")?,
                process: json::field(c, "process")?,
                sink: json::field(c, "sink")?,
                value: json::field(c, "value")?,
            })
        } else {
            Err(JsonError::new(format!("invalid Step: {v:?}")))
        }
    }
}

impl Step {
    /// The token taking this step.
    pub fn token(&self) -> TokenId {
        match self {
            Step::Bal { token, .. } | Step::Count { token, .. } => *token,
        }
    }

    /// The process shepherding the token.
    pub fn process(&self) -> ProcessId {
        match self {
            Step::Bal { process, .. } | Step::Count { process, .. } => *process,
        }
    }
}

/// A step paired with its (non-decreasing) time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedStep {
    /// The time at which the step occurs.
    pub time: f64,
    /// The step itself.
    pub step: Step,
}

json_struct!(TimedStep { time, step });

/// The complete record of one token's increment operation — the unit the
/// consistency checkers in `cnet-core` reason about.
#[derive(Clone, Debug, PartialEq)]
pub struct TokenRecord {
    /// The token.
    pub token: TokenId,
    /// The process that shepherded it.
    pub process: ProcessId,
    /// The input wire it entered on.
    pub input: usize,
    /// Time of its first step (passing layer 1).
    pub enter_time: f64,
    /// Time of its `COUNT` step (passing layer `d + 1`).
    pub exit_time: f64,
    /// Index of its first step in the execution's step sequence; used to
    /// break ties when two steps share a time.
    pub enter_seq: usize,
    /// Index of its `COUNT` step in the execution's step sequence.
    pub exit_seq: usize,
    /// The sink (counter) it exited through.
    pub sink: usize,
    /// The value it obtained.
    pub value: u64,
    /// Its full schedule: the time it passed each layer.
    pub step_times: Vec<f64>,
}

json_struct!(TokenRecord {
    token,
    process,
    input,
    enter_time,
    exit_time,
    enter_seq,
    exit_seq,
    sink,
    value,
    step_times,
});

impl TokenRecord {
    /// Whether this token **completely precedes** `other` in the execution:
    /// its last step comes before the other token's first step. Ties in time
    /// are resolved by position in the step sequence.
    pub fn completely_precedes(&self, other: &TokenRecord) -> bool {
        (self.exit_time, self.exit_seq) < (other.enter_time, other.enter_seq)
    }

    /// Whether the two tokens overlap (neither completely precedes the
    /// other).
    pub fn overlaps(&self, other: &TokenRecord) -> bool {
        !self.completely_precedes(other) && !other.completely_precedes(self)
    }
}

/// A timed execution: the full step trace plus one record per token.
///
/// Produced by [`crate::engine::run`]; consumed by the checkers in
/// `cnet-core` and the measurement functions in [`crate::timing`].
#[derive(Clone, Debug, PartialEq)]
pub struct TimedExecution {
    depth: usize,
    fan_out: usize,
    steps: Vec<TimedStep>,
    records: Vec<TokenRecord>,
}

json_struct!(TimedExecution { depth, fan_out, steps, records });

impl TimedExecution {
    pub(crate) fn new(
        depth: usize,
        fan_out: usize,
        steps: Vec<TimedStep>,
        records: Vec<TokenRecord>,
    ) -> Self {
        TimedExecution { depth, fan_out, steps, records }
    }

    /// The depth of the network the execution ran on.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The fan-out of the network the execution ran on.
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }

    /// The step trace, in execution order (non-decreasing time).
    pub fn steps(&self) -> &[TimedStep] {
        &self.steps
    }

    /// One record per token, indexed by [`TokenId`].
    pub fn records(&self) -> &[TokenRecord] {
        &self.records
    }

    /// The record for a specific token.
    ///
    /// # Panics
    ///
    /// Panics if the token id is out of range.
    pub fn record(&self, token: TokenId) -> &TokenRecord {
        &self.records[token.index()]
    }

    /// The values obtained, in token-id order.
    pub fn values(&self) -> Vec<u64> {
        self.records.iter().map(|r| r.value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(enter: f64, exit: f64, enter_seq: usize, exit_seq: usize) -> TokenRecord {
        TokenRecord {
            token: TokenId(0),
            process: ProcessId(0),
            input: 0,
            enter_time: enter,
            exit_time: exit,
            enter_seq,
            exit_seq,
            sink: 0,
            value: 0,
            step_times: vec![enter, exit],
        }
    }

    #[test]
    fn complete_precedence_by_time() {
        let a = record(0.0, 1.0, 0, 1);
        let b = record(2.0, 3.0, 2, 3);
        assert!(a.completely_precedes(&b));
        assert!(!b.completely_precedes(&a));
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn overlap_when_intervals_intersect() {
        let a = record(0.0, 2.0, 0, 2);
        let b = record(1.0, 3.0, 1, 3);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
    }

    #[test]
    fn ties_resolved_by_sequence() {
        // a exits at time 1.0 (seq 5); b enters at time 1.0 (seq 6):
        // a's last step comes first in the trace, so a completely precedes b.
        let a = record(0.0, 1.0, 0, 5);
        let b = record(1.0, 2.0, 6, 9);
        assert!(a.completely_precedes(&b));
        // reversed sequence order: they overlap.
        let c = record(1.0, 2.0, 3, 4);
        assert!(!a.completely_precedes(&c));
        assert!(a.overlaps(&c));
    }

    #[test]
    fn steps_round_trip_through_json() {
        use cnet_util::json;
        let steps = [
            Step::Bal {
                token: TokenId(4),
                process: ProcessId(2),
                balancer: 7,
                in_port: 0,
                out_port: 1,
            },
            Step::Count { token: TokenId(1), process: ProcessId(0), sink: 3, value: 9 },
        ];
        for s in steps {
            let back: Step = json::from_str(&json::to_string(&s)).unwrap();
            assert_eq!(s, back);
        }
        // The wire shape is serde's external tagging, which the tamper tests
        // in `validate` rely on.
        let v = json::to_value(&steps[1]);
        assert_eq!(v["Count"]["sink"].as_u64(), Some(3));
    }

    #[test]
    fn executions_round_trip_through_json() {
        use cnet_util::json;
        let exec = TimedExecution::new(
            1,
            2,
            vec![TimedStep {
                time: 0.5,
                step: Step::Count {
                    token: TokenId(0),
                    process: ProcessId(0),
                    sink: 0,
                    value: 0,
                },
            }],
            vec![record(0.0, 0.5, 0, 0)],
        );
        let back: TimedExecution = json::from_str(&json::to_string(&exec)).unwrap();
        assert_eq!(exec, back);
    }

    #[test]
    fn step_accessors() {
        let s = Step::Bal {
            token: TokenId(4),
            process: ProcessId(2),
            balancer: 0,
            in_port: 0,
            out_port: 1,
        };
        assert_eq!(s.token(), TokenId(4));
        assert_eq!(s.process(), ProcessId(2));
        let c = Step::Count { token: TokenId(1), process: ProcessId(0), sink: 3, value: 7 };
        assert_eq!(c.token(), TokenId(1));
    }
}
