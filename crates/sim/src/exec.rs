//! Timed executions: step traces and per-token operation records.

use crate::ids::{ProcessId, TokenId};
use serde::{Deserialize, Serialize};

/// A transition step of the execution (Section 2.2): either a token crossing
/// a balancer or a token obtaining a value at a counter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// The paper's `BAL_p(T, B, i, j)`.
    Bal {
        /// The token taking the step.
        token: TokenId,
        /// The process shepherding it.
        process: ProcessId,
        /// The balancer traversed (index into the network).
        balancer: usize,
        /// Input port entered on.
        in_port: usize,
        /// Output port exited on.
        out_port: usize,
    },
    /// The paper's `COUNT_p(T, C, v)`.
    Count {
        /// The token taking the step.
        token: TokenId,
        /// The process shepherding it.
        process: ProcessId,
        /// The sink (counter) traversed.
        sink: usize,
        /// The value assigned.
        value: u64,
    },
}

impl Step {
    /// The token taking this step.
    pub fn token(&self) -> TokenId {
        match self {
            Step::Bal { token, .. } | Step::Count { token, .. } => *token,
        }
    }

    /// The process shepherding the token.
    pub fn process(&self) -> ProcessId {
        match self {
            Step::Bal { process, .. } | Step::Count { process, .. } => *process,
        }
    }
}

/// A step paired with its (non-decreasing) time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimedStep {
    /// The time at which the step occurs.
    pub time: f64,
    /// The step itself.
    pub step: Step,
}

/// The complete record of one token's increment operation — the unit the
/// consistency checkers in `cnet-core` reason about.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TokenRecord {
    /// The token.
    pub token: TokenId,
    /// The process that shepherded it.
    pub process: ProcessId,
    /// The input wire it entered on.
    pub input: usize,
    /// Time of its first step (passing layer 1).
    pub enter_time: f64,
    /// Time of its `COUNT` step (passing layer `d + 1`).
    pub exit_time: f64,
    /// Index of its first step in the execution's step sequence; used to
    /// break ties when two steps share a time.
    pub enter_seq: usize,
    /// Index of its `COUNT` step in the execution's step sequence.
    pub exit_seq: usize,
    /// The sink (counter) it exited through.
    pub sink: usize,
    /// The value it obtained.
    pub value: u64,
    /// Its full schedule: the time it passed each layer.
    pub step_times: Vec<f64>,
}

impl TokenRecord {
    /// Whether this token **completely precedes** `other` in the execution:
    /// its last step comes before the other token's first step. Ties in time
    /// are resolved by position in the step sequence.
    pub fn completely_precedes(&self, other: &TokenRecord) -> bool {
        (self.exit_time, self.exit_seq) < (other.enter_time, other.enter_seq)
    }

    /// Whether the two tokens overlap (neither completely precedes the
    /// other).
    pub fn overlaps(&self, other: &TokenRecord) -> bool {
        !self.completely_precedes(other) && !other.completely_precedes(self)
    }
}

/// A timed execution: the full step trace plus one record per token.
///
/// Produced by [`crate::engine::run`]; consumed by the checkers in
/// `cnet-core` and the measurement functions in [`crate::timing`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimedExecution {
    depth: usize,
    fan_out: usize,
    steps: Vec<TimedStep>,
    records: Vec<TokenRecord>,
}

impl TimedExecution {
    pub(crate) fn new(
        depth: usize,
        fan_out: usize,
        steps: Vec<TimedStep>,
        records: Vec<TokenRecord>,
    ) -> Self {
        TimedExecution { depth, fan_out, steps, records }
    }

    /// The depth of the network the execution ran on.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The fan-out of the network the execution ran on.
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }

    /// The step trace, in execution order (non-decreasing time).
    pub fn steps(&self) -> &[TimedStep] {
        &self.steps
    }

    /// One record per token, indexed by [`TokenId`].
    pub fn records(&self) -> &[TokenRecord] {
        &self.records
    }

    /// The record for a specific token.
    ///
    /// # Panics
    ///
    /// Panics if the token id is out of range.
    pub fn record(&self, token: TokenId) -> &TokenRecord {
        &self.records[token.index()]
    }

    /// The values obtained, in token-id order.
    pub fn values(&self) -> Vec<u64> {
        self.records.iter().map(|r| r.value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(enter: f64, exit: f64, enter_seq: usize, exit_seq: usize) -> TokenRecord {
        TokenRecord {
            token: TokenId(0),
            process: ProcessId(0),
            input: 0,
            enter_time: enter,
            exit_time: exit,
            enter_seq,
            exit_seq,
            sink: 0,
            value: 0,
            step_times: vec![enter, exit],
        }
    }

    #[test]
    fn complete_precedence_by_time() {
        let a = record(0.0, 1.0, 0, 1);
        let b = record(2.0, 3.0, 2, 3);
        assert!(a.completely_precedes(&b));
        assert!(!b.completely_precedes(&a));
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn overlap_when_intervals_intersect() {
        let a = record(0.0, 2.0, 0, 2);
        let b = record(1.0, 3.0, 1, 3);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
    }

    #[test]
    fn ties_resolved_by_sequence() {
        // a exits at time 1.0 (seq 5); b enters at time 1.0 (seq 6):
        // a's last step comes first in the trace, so a completely precedes b.
        let a = record(0.0, 1.0, 0, 5);
        let b = record(1.0, 2.0, 6, 9);
        assert!(a.completely_precedes(&b));
        // reversed sequence order: they overlap.
        let c = record(1.0, 2.0, 3, 4);
        assert!(!a.completely_precedes(&c));
        assert!(a.overlaps(&c));
    }

    #[test]
    fn step_accessors() {
        let s = Step::Bal {
            token: TokenId(4),
            process: ProcessId(2),
            balancer: 0,
            in_port: 0,
            out_port: 1,
        };
        assert_eq!(s.token(), TokenId(4));
        assert_eq!(s.process(), ProcessId(2));
        let c = Step::Count { token: TokenId(1), process: ProcessId(0), sink: 3, value: 7 };
        assert_eq!(c.token(), TokenId(1));
    }
}
