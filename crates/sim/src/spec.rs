//! Token specifications: the input format of the simulation engine.

use crate::ids::{ProcessId, TokenId};
use cnet_util::json_struct;

/// The schedule of a single token: which process shepherds it, which input
/// wire it enters on, and the time at which it passes each layer of the
/// (uniform) network.
///
/// `step_times[l]` is the paper's `S(T, l+1)`: the time the token takes its
/// step at a node in layer `l+1`. For a network of depth `d` the vector has
/// `d + 1` entries — `d` balancer steps followed by the `COUNT` step.
///
/// Within one [`engine::run`](crate::engine::run) call, ties in time are
/// broken first by the token's position in the spec slice, then by layer;
/// schedule constructions rely on this to place simultaneous steps in a
/// definite order (e.g. the flushing waves of Theorem 3.2, which must enter
/// a balancer *immediately before* the token they shadow).
#[derive(Clone, Debug, PartialEq)]
pub struct TimedTokenSpec {
    /// The process shepherding the token.
    pub process: ProcessId,
    /// The input wire (0-based) the token enters on.
    pub input: usize,
    /// One time per layer, non-decreasing, length `depth + 1`.
    pub step_times: Vec<f64>,
}

json_struct!(TimedTokenSpec { process, input, step_times });

impl TimedTokenSpec {
    /// Builds a spec whose token enters layer 1 at `start` and crosses each
    /// subsequent wire with the given per-transition delays (so
    /// `delays.len()` must be the network depth).
    pub fn with_delays(process: ProcessId, input: usize, start: f64, delays: &[f64]) -> Self {
        let mut step_times = Vec::with_capacity(delays.len() + 1);
        let mut t = start;
        step_times.push(t);
        for &d in delays {
            t += d;
            step_times.push(t);
        }
        TimedTokenSpec { process, input, step_times }
    }

    /// Builds a lock-step spec: enter at `start` and cross every wire with
    /// the same `delay`, through a network of depth `depth`.
    pub fn lock_step(process: ProcessId, input: usize, start: f64, delay: f64, depth: usize) -> Self {
        TimedTokenSpec::with_delays(process, input, start, &vec![delay; depth])
    }

    /// The time the token passes layer 1 (its first step).
    pub fn enter_time(&self) -> f64 {
        self.step_times[0]
    }

    /// The time of the token's `COUNT` step (its last step).
    pub fn exit_time(&self) -> f64 {
        *self.step_times.last().expect("step_times is non-empty")
    }
}

/// A token id paired with its position in the spec slice. The engine assigns
/// `TokenId(i)` to the `i`-th spec.
pub fn token_id_of_position(position: usize) -> TokenId {
    TokenId(position)
}

/// The schedule of a token for the **adaptive** engine
/// ([`crate::engine::run_adaptive`]), which supports non-uniform networks:
/// the token's route length is unknown up front, so instead of one time per
/// layer, the spec supplies an entry time and a pool of per-hop delays that
/// are consumed as the token actually moves.
///
/// `delays[k]` is the wire delay before the token's `(k+2)`-th step (its
/// first step happens at `enter_time`). The pool must be at least as long
/// as the longest route the token can take — `net.depth()` hops suffices.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveTokenSpec {
    /// The process shepherding the token.
    pub process: ProcessId,
    /// The input wire (0-based) the token enters on.
    pub input: usize,
    /// The time of the token's first step.
    pub enter_time: f64,
    /// Per-hop delays, consumed in order as the token advances.
    pub delays: Vec<f64>,
}

json_struct!(AdaptiveTokenSpec { process, input, enter_time, delays });

impl AdaptiveTokenSpec {
    /// A spec whose token crosses every wire with the same `delay`, with a
    /// pool sized for routes up to `max_hops`.
    pub fn lock_step(
        process: ProcessId,
        input: usize,
        enter_time: f64,
        delay: f64,
        max_hops: usize,
    ) -> Self {
        AdaptiveTokenSpec { process, input, enter_time, delays: vec![delay; max_hops] }
    }
}

impl From<&TimedTokenSpec> for AdaptiveTokenSpec {
    /// Converts a per-layer schedule into the adaptive format (exact on
    /// uniform networks, where the route length equals the layer count).
    fn from(spec: &TimedTokenSpec) -> Self {
        AdaptiveTokenSpec {
            process: spec.process,
            input: spec.input,
            enter_time: spec.enter_time(),
            delays: spec.step_times.windows(2).map(|w| w[1] - w[0]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_delays_accumulates() {
        let s = TimedTokenSpec::with_delays(ProcessId(0), 2, 1.0, &[0.5, 0.25]);
        assert_eq!(s.step_times, vec![1.0, 1.5, 1.75]);
        assert_eq!(s.enter_time(), 1.0);
        assert_eq!(s.exit_time(), 1.75);
        assert_eq!(s.input, 2);
    }

    #[test]
    fn lock_step_is_uniform() {
        let s = TimedTokenSpec::lock_step(ProcessId(1), 0, 0.0, 2.0, 3);
        assert_eq!(s.step_times, vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn zero_depth_token_has_single_step() {
        let s = TimedTokenSpec::with_delays(ProcessId(0), 0, 5.0, &[]);
        assert_eq!(s.step_times, vec![5.0]);
        assert_eq!(s.enter_time(), s.exit_time());
    }

    #[test]
    fn adaptive_conversion_preserves_delays() {
        let timed = TimedTokenSpec::with_delays(ProcessId(3), 2, 1.0, &[0.5, 2.0, 0.25]);
        let adaptive: AdaptiveTokenSpec = (&timed).into();
        assert_eq!(adaptive.process, ProcessId(3));
        assert_eq!(adaptive.input, 2);
        assert_eq!(adaptive.enter_time, 1.0);
        assert_eq!(adaptive.delays, vec![0.5, 2.0, 0.25]);
    }

    #[test]
    fn adaptive_lock_step_pools() {
        let s = AdaptiveTokenSpec::lock_step(ProcessId(1), 0, 2.0, 1.5, 4);
        assert_eq!(s.delays, vec![1.5; 4]);
        assert_eq!(s.enter_time, 2.0);
    }

    #[test]
    fn specs_round_trip_through_json() {
        use cnet_util::json;
        let timed = TimedTokenSpec::with_delays(ProcessId(3), 2, 1.0, &[0.5, 2.0, 0.25]);
        let back: TimedTokenSpec = json::from_str(&json::to_string(&timed)).unwrap();
        assert_eq!(timed, back);
        let adaptive = AdaptiveTokenSpec::lock_step(ProcessId(1), 0, 2.0, 1.5, 4);
        let back: AdaptiveTokenSpec = json::from_str(&json::to_string(&adaptive)).unwrap();
        assert_eq!(adaptive, back);
    }
}
