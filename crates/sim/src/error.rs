//! Errors produced by the simulation engine.

use crate::ids::{ProcessId, TokenId};
use std::error::Error;
use std::fmt;

/// Errors detected while validating token specifications or replaying a
/// timed execution.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The engine requires a uniform network (the paper's timing parameters
    /// are defined layer-by-layer over uniform networks).
    NotUniform,
    /// A token's `step_times` has the wrong length (must be `depth + 1`).
    WrongStepCount {
        /// The offending token.
        token: TokenId,
        /// How many step times were supplied.
        got: usize,
        /// How many are required (`depth + 1`).
        want: usize,
    },
    /// A token's step times decrease.
    DecreasingStepTimes {
        /// The offending token.
        token: TokenId,
    },
    /// A step time is not a finite number.
    NonFiniteTime {
        /// The offending token.
        token: TokenId,
    },
    /// A token's input wire is out of range.
    BadInputWire {
        /// The offending token.
        token: TokenId,
        /// The requested input wire.
        input: usize,
    },
    /// Two tokens of the same process overlap in time, violating execution
    /// condition 3 of Section 2.2.
    OverlappingProcessTokens {
        /// The process issuing both tokens.
        process: ProcessId,
        /// The two overlapping tokens.
        tokens: (TokenId, TokenId),
    },
    /// The Theorem 3.2 transformation was asked to run on a network with
    /// irregular balancers or unequal fan-in/fan-out (its flushing wave
    /// requires fan-in = fan-out = W with regular balancers).
    TransformNeedsRegularFan,
    /// The Theorem 3.2 transformation found no non-linearizable token pair
    /// to transplant.
    NoWitnessPair,
    /// An adversarial construction's preconditions do not hold.
    InvalidConstruction {
        /// Which precondition failed.
        what: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotUniform => write!(f, "network is not uniform"),
            SimError::WrongStepCount { token, got, want } => {
                write!(f, "token {token} has {got} step times, expected {want}")
            }
            SimError::DecreasingStepTimes { token } => {
                write!(f, "token {token} has decreasing step times")
            }
            SimError::NonFiniteTime { token } => {
                write!(f, "token {token} has a non-finite step time")
            }
            SimError::BadInputWire { token, input } => {
                write!(f, "token {token} enters on nonexistent input wire {input}")
            }
            SimError::OverlappingProcessTokens { process, tokens } => {
                write!(
                    f,
                    "tokens {} and {} of process {process} overlap in time",
                    tokens.0, tokens.1
                )
            }
            SimError::TransformNeedsRegularFan => {
                write!(f, "transformation requires a regular network with fan-in = fan-out")
            }
            SimError::NoWitnessPair => {
                write!(f, "execution has no non-linearizable token pair to transplant")
            }
            SimError::InvalidConstruction { what } => {
                write!(f, "adversarial construction precondition failed: {what}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = SimError::WrongStepCount { token: TokenId(7), got: 3, want: 5 };
        assert_eq!(e.to_string(), "token T7 has 3 step times, expected 5");
        let e = SimError::OverlappingProcessTokens {
            process: ProcessId(2),
            tokens: (TokenId(0), TokenId(1)),
        };
        assert!(e.to_string().contains("p2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
