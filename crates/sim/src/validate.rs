//! Independent validation of timed executions against the formal execution
//! conditions of Section 2.2.
//!
//! The engine *constructs* executions; this module *checks* them, the way a
//! proof assistant would check a proof: it replays the step trace with its
//! own bookkeeping and verifies
//!
//! 1. times are non-decreasing;
//! 2. each token's steps form a contiguous source→counter route
//!    (wires connect, ports match);
//! 3. tokens of one process never interleave (execution condition 3);
//! 4. **safety**: no balancer emits more tokens than it received, at every
//!    prefix of the execution;
//! 5. **liveness / quiescence**: at the end of a finite execution every
//!    balancer has emitted exactly what it received — no token is swallowed;
//! 6. the per-balancer **step property** on output-wire counts at
//!    quiescence, and the network-level step property on the counters;
//! 7. counter values are the arithmetic the paper prescribes
//!    (`j, j + w, j + 2w, …` per counter, in order).
//!
//! Every test of the engine gains teeth by round-tripping through
//! [`validate`]; it is also the safety net for hand-built adversarial
//! schedules.

use crate::error::SimError;
use crate::exec::{Step, TimedExecution};
use crate::ids::{ProcessId, TokenId};
use cnet_topology::ids::{BalancerId, SinkId, WireId};
use cnet_topology::network::WireEnd;
use cnet_topology::state::has_step_property;
use cnet_topology::Network;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A violation of the formal execution conditions.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// Step times decrease somewhere in the trace.
    TimeNotMonotone {
        /// Index of the offending step.
        step: usize,
    },
    /// A token's steps do not follow the network's wires.
    BrokenRoute {
        /// The offending token.
        token: TokenId,
        /// Description of the break.
        what: &'static str,
    },
    /// A balancer was exited on a port that its round-robin state forbids.
    WrongPort {
        /// Index of the offending step.
        step: usize,
    },
    /// Two tokens of one process interleave.
    InterleavedProcess {
        /// The offending process.
        process: ProcessId,
    },
    /// A counter handed out a value out of sequence.
    BadCounterValue {
        /// The sink whose counter misbehaved.
        sink: usize,
        /// The value observed.
        got: u64,
        /// The value required.
        want: u64,
    },
    /// At the end of the execution some balancer still holds tokens.
    NotQuiescent {
        /// The balancer that swallowed tokens.
        balancer: BalancerId,
    },
    /// A balancer's quiescent output counts violate the step property.
    BalancerStepProperty {
        /// The offending balancer.
        balancer: BalancerId,
    },
    /// The network-level quiescent counter counts violate the step property.
    NetworkStepProperty,
    /// The execution references an entity outside the network.
    OutOfRange {
        /// Index of the offending step.
        step: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::TimeNotMonotone { step } => {
                write!(f, "time decreases at step {step}")
            }
            ValidationError::BrokenRoute { token, what } => {
                write!(f, "token {token} breaks its route: {what}")
            }
            ValidationError::WrongPort { step } => {
                write!(f, "step {step} exits a balancer on a forbidden port")
            }
            ValidationError::InterleavedProcess { process } => {
                write!(f, "tokens of process {process} interleave")
            }
            ValidationError::BadCounterValue { sink, got, want } => {
                write!(f, "counter {sink} issued {got}, expected {want}")
            }
            ValidationError::NotQuiescent { balancer } => {
                write!(f, "balancer {balancer} swallowed tokens")
            }
            ValidationError::BalancerStepProperty { balancer } => {
                write!(f, "balancer {balancer} violates the step property at quiescence")
            }
            ValidationError::NetworkStepProperty => {
                write!(f, "network output counts violate the step property at quiescence")
            }
            ValidationError::OutOfRange { step } => {
                write!(f, "step {step} references an entity outside the network")
            }
        }
    }
}

impl Error for ValidationError {}

/// Summary of a validated, quiescent execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuiescenceSummary {
    /// Total tokens that traversed the network.
    pub tokens: u64,
    /// Tokens that exited on each output wire (`y_j`).
    pub output_counts: Vec<u64>,
    /// Tokens that entered on each input wire (`x_i`).
    pub input_counts: Vec<u64>,
}

/// Validates a timed execution against the network (see module docs for the
/// exact conditions).
///
/// # Errors
///
/// Returns the first [`ValidationError`] encountered, or [`SimError`] if the
/// execution's metadata does not match the network at all.
pub fn validate(
    net: &Network,
    exec: &TimedExecution,
) -> Result<QuiescenceSummary, Box<dyn Error + Send + Sync>> {
    if exec.depth() != net.depth() || exec.fan_out() != net.fan_out() {
        return Err(Box::new(SimError::InvalidConstruction {
            what: "execution metadata does not match the network",
        }));
    }
    // 1. Monotone time.
    for (i, pair) in exec.steps().windows(2).enumerate() {
        if pair[0].time > pair[1].time {
            return Err(Box::new(ValidationError::TimeNotMonotone { step: i + 1 }));
        }
    }

    // Independent replay state.
    let mut bal_state: Vec<usize> = vec![0; net.size()];
    let mut bal_in: Vec<u64> = vec![0; net.size()];
    let mut bal_out: Vec<u64> = vec![0; net.size()];
    // Per-balancer per-output-port counts, for the balancer step property.
    let mut port_out: Vec<Vec<u64>> =
        net.balancers().map(|(_, b)| vec![0; b.fan_out()]).collect();
    let mut counter_next: Vec<u64> = (0..net.fan_out() as u64).collect();
    let mut output_counts: Vec<u64> = vec![0; net.fan_out()];
    let mut input_counts: Vec<u64> = vec![0; net.fan_in()];
    // Where each token currently is.
    let mut token_wire: BTreeMap<TokenId, WireId> = BTreeMap::new();
    let mut done: BTreeMap<TokenId, bool> = BTreeMap::new();
    // Process interleaving: last active token per process.
    let mut process_active: BTreeMap<ProcessId, TokenId> = BTreeMap::new();
    let mut process_finished: BTreeMap<ProcessId, Vec<TokenId>> = BTreeMap::new();

    for (i, ts) in exec.steps().iter().enumerate() {
        let token = ts.step.token();
        let process = ts.step.process();
        // Track per-process token contiguity: a process may only have one
        // unfinished token, and once a token finishes, no further steps of it
        // may appear.
        if done.get(&token).copied().unwrap_or(false) {
            return Err(Box::new(ValidationError::BrokenRoute {
                token,
                what: "steps after its COUNT step",
            }));
        }
        match process_active.get(&process) {
            Some(&active) if active != token => {
                return Err(Box::new(ValidationError::InterleavedProcess { process }));
            }
            Some(_) => {}
            None => {
                if process_finished.get(&process).is_some_and(|v| v.contains(&token)) {
                    return Err(Box::new(ValidationError::InterleavedProcess { process }));
                }
                process_active.insert(process, token);
                // New token: it must start on its record's input wire.
                let record = exec.record(token);
                if record.input >= net.fan_in() {
                    return Err(Box::new(ValidationError::OutOfRange { step: i }));
                }
                input_counts[record.input] += 1;
                token_wire
                    .insert(token, net.source_wire(cnet_topology::ids::SourceId(record.input)));
            }
        }
        let wire = *token_wire.get(&token).expect("token registered above");
        match ts.step {
            Step::Bal { balancer, in_port, out_port, .. } => {
                if balancer >= net.size() {
                    return Err(Box::new(ValidationError::OutOfRange { step: i }));
                }
                let bid = BalancerId(balancer);
                let bal = net.balancer(bid);
                // 2. Route continuity: the token's wire must end at this
                // balancer, on this port.
                if net.wire(wire).end
                    != (WireEnd::Balancer { balancer: bid, port: in_port })
                {
                    return Err(Box::new(ValidationError::BrokenRoute {
                        token,
                        what: "balancer step does not match the token's wire",
                    }));
                }
                // Round-robin discipline.
                if out_port != bal_state[balancer] {
                    return Err(Box::new(ValidationError::WrongPort { step: i }));
                }
                bal_state[balancer] = (bal_state[balancer] + 1) % bal.fan_out();
                bal_in[balancer] += 1;
                bal_out[balancer] += 1;
                port_out[balancer][out_port] += 1;
                // 4. Safety is maintained by construction of this replay:
                // each BAL step consumes and emits exactly one token, so
                // emissions never exceed receipts.
                token_wire.insert(token, bal.output(out_port));
            }
            Step::Count { sink, value, .. } => {
                if sink >= net.fan_out() {
                    return Err(Box::new(ValidationError::OutOfRange { step: i }));
                }
                if net.wire(wire).end != (WireEnd::Sink(SinkId(sink))) {
                    return Err(Box::new(ValidationError::BrokenRoute {
                        token,
                        what: "count step does not match the token's wire",
                    }));
                }
                // 7. Counter arithmetic.
                if value != counter_next[sink] {
                    return Err(Box::new(ValidationError::BadCounterValue {
                        sink,
                        got: value,
                        want: counter_next[sink],
                    }));
                }
                counter_next[sink] += net.fan_out() as u64;
                output_counts[sink] += 1;
                done.insert(token, true);
                process_active.remove(&process);
                process_finished.entry(process).or_default().push(token);
            }
        }
    }

    // 5. Quiescence: every token that entered a balancer left it, and every
    //    started token finished.
    for (b, _) in net.balancers() {
        if bal_in[b.index()] != bal_out[b.index()] {
            return Err(Box::new(ValidationError::NotQuiescent { balancer: b }));
        }
    }
    for &token in token_wire.keys() {
        if !done.get(&token).copied().unwrap_or(false) {
            return Err(Box::new(ValidationError::BrokenRoute {
                token,
                what: "token never reached a counter",
            }));
        }
    }
    // 6. Step properties at quiescence.
    for (b, _) in net.balancers() {
        if !has_step_property(&port_out[b.index()]) {
            return Err(Box::new(ValidationError::BalancerStepProperty { balancer: b }));
        }
    }
    if !has_step_property(&output_counts) {
        return Err(Box::new(ValidationError::NetworkStepProperty));
    }

    Ok(QuiescenceSummary {
        tokens: output_counts.iter().sum(),
        output_counts,
        input_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{bitonic_three_wave, holding_race};
    use crate::engine::run;
    use crate::spec::TimedTokenSpec;
    use crate::workload::{generate, WorkloadConfig};
    use cnet_topology::construct::{bitonic, counting_tree, periodic};

    #[test]
    fn engine_outputs_always_validate() {
        for net in [bitonic(8).unwrap(), periodic(8).unwrap(), counting_tree(8).unwrap()] {
            let cfg = WorkloadConfig {
                processes: 5,
                tokens_per_process: 6,
                c_min: 0.5,
                c_max: 4.0,
                local_delay: 0.0,
                start_spread: 2.0,
            };
            for seed in 0..20 {
                let specs = generate(&net, &cfg, seed);
                let exec = run(&net, &specs).unwrap();
                let summary = validate(&net, &exec).unwrap_or_else(|e| {
                    panic!("{net} seed {seed}: {e}");
                });
                assert_eq!(summary.tokens, 30);
                assert_eq!(summary.input_counts.iter().sum::<u64>(), 30);
            }
        }
    }

    #[test]
    fn adversarial_schedules_validate() {
        let net = bitonic(16).unwrap();
        let sched = bitonic_three_wave(&net, 1.0, 5.0).unwrap();
        let exec = run(&net, &sched.specs).unwrap();
        validate(&net, &exec).unwrap();
        let race = holding_race(&net, 1.0, 20.0, true).unwrap();
        let exec = run(&net, &race.specs).unwrap();
        validate(&net, &exec).unwrap();
    }

    #[test]
    fn transformed_executions_validate() {
        use crate::ids::ProcessId;
        use crate::transform::desequentialize;
        let net = bitonic(8).unwrap();
        let mut sched = bitonic_three_wave(&net, 1.0, 10.0).unwrap();
        for i in sched.wave3.clone() {
            for t in &mut sched.specs[i].step_times {
                *t += 0.5;
            }
        }
        for (i, s) in sched.specs.iter_mut().enumerate() {
            s.process = ProcessId(i);
        }
        let exec = run(&net, &sched.specs).unwrap();
        let outcome = desequentialize(&net, &sched.specs, &exec).unwrap();
        let new_exec = run(&net, &outcome.specs).unwrap();
        validate(&net, &new_exec).unwrap();
    }

    #[test]
    fn wrong_network_is_rejected_by_metadata() {
        let net = bitonic(2).unwrap();
        let specs = vec![TimedTokenSpec::lock_step(ProcessId(0), 0, 0.0, 1.0, 1)];
        let exec = run(&net, &specs).unwrap();
        let other = bitonic(4).unwrap();
        assert!(validate(&other, &exec).is_err());
    }

    /// Serialize an execution, corrupt one field through JSON, and confirm
    /// the validator rejects the forgery — fault injection for the checker
    /// itself.
    fn tamper(
        exec: &crate::exec::TimedExecution,
        mutate: impl FnOnce(&mut cnet_util::json::Value),
    ) -> crate::exec::TimedExecution {
        let mut v = cnet_util::json::to_value(exec);
        mutate(&mut v);
        cnet_util::json::from_value(&v).expect("tampered execution still deserializes")
    }

    #[test]
    fn tampered_counter_value_is_caught() {
        let net = bitonic(4).unwrap();
        let specs = vec![
            TimedTokenSpec::lock_step(ProcessId(0), 0, 0.0, 1.0, 3),
            TimedTokenSpec::lock_step(ProcessId(1), 1, 10.0, 1.0, 3),
        ];
        let exec = run(&net, &specs).unwrap();
        let forged = tamper(&exec, |v| {
            // Find a Count step and bump its value.
            for step in v["steps"].as_array_mut().unwrap() {
                if let Some(count) = step["step"].get_mut("Count") {
                    let old = count["value"].as_u64().unwrap();
                    count["value"] = (old + 4).into();
                    return;
                }
            }
            panic!("no count step found");
        });
        let err = validate(&net, &forged).unwrap_err();
        assert!(err.to_string().contains("issued"), "{err}");
    }

    #[test]
    fn tampered_port_is_caught() {
        let net = bitonic(4).unwrap();
        let specs = vec![TimedTokenSpec::lock_step(ProcessId(0), 0, 0.0, 1.0, 3)];
        let exec = run(&net, &specs).unwrap();
        let forged = tamper(&exec, |v| {
            let step = &mut v["steps"].as_array_mut().unwrap()[0];
            let bal = step["step"].get_mut("Bal").unwrap();
            let old = bal["out_port"].as_u64().unwrap();
            bal["out_port"] = (1 - old).into();
        });
        let err = validate(&net, &forged).unwrap_err();
        assert!(err.to_string().contains("forbidden port") || err.to_string().contains("route"));
    }

    #[test]
    fn tampered_time_order_is_caught() {
        let net = bitonic(2).unwrap();
        let specs = vec![
            TimedTokenSpec::lock_step(ProcessId(0), 0, 0.0, 1.0, 1),
            TimedTokenSpec::lock_step(ProcessId(1), 1, 2.0, 1.0, 1),
        ];
        let exec = run(&net, &specs).unwrap();
        let forged = tamper(&exec, |v| {
            v["steps"].as_array_mut().unwrap()[0]["time"] = 99.0.into();
        });
        let err = validate(&net, &forged).unwrap_err();
        assert!(err.to_string().contains("time decreases"), "{err}");
    }

    #[test]
    fn dropped_count_step_is_caught_as_swallowed_token() {
        let net = bitonic(2).unwrap();
        let specs = vec![TimedTokenSpec::lock_step(ProcessId(0), 0, 0.0, 1.0, 1)];
        let exec = run(&net, &specs).unwrap();
        let forged = tamper(&exec, |v| {
            v["steps"].as_array_mut().unwrap().pop();
        });
        let err = validate(&net, &forged).unwrap_err();
        assert!(
            err.to_string().contains("never reached a counter"),
            "{err}"
        );
    }

    #[test]
    fn mismatched_network_is_rejected() {
        let b8 = bitonic(8).unwrap();
        let p8 = periodic(8).unwrap();
        let cfg = WorkloadConfig {
            processes: 3,
            tokens_per_process: 2,
            c_min: 1.0,
            c_max: 2.0,
            local_delay: 0.0,
            start_spread: 1.0,
        };
        let specs = generate(&b8, &cfg, 1);
        let exec = run(&b8, &specs).unwrap();
        // Same depth/fan metadata would be required; P(8) differs in depth.
        assert!(validate(&p8, &exec).is_err());
    }
}
