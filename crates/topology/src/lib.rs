//! Balancing-network substrate for counting networks.
//!
//! This crate implements the structural model of Section 2 of
//! *Mavronicolas, Merritt, Taubenfeld — "Sequentially Consistent versus
//! Linearizable Counting Networks"* (PODC 1999):
//!
//! * [`Balancer`]s with arbitrary fan-in and fan-out, connected acyclically by
//!   wires into a [`Network`] with source nodes (input wires), inner balancer
//!   nodes, and sink nodes (output wires hosting counters).
//! * The classic **constructions**: the bitonic counting network `B(w)`, the
//!   periodic counting network `P(w)` (with both block-network constructions),
//!   and the counting tree (diffracting tree) — see [`construct`].
//! * **Structural analysis** from Sections 2.5 and 5.3: depth, layers,
//!   uniformity, shallowness, influence radius, wire/balancer *valency*,
//!   totally-ordering and complete layers, split depth, split sequences and
//!   split numbers — see [`analysis`].
//! * A purely sequential [`state::NetworkState`] that routes tokens one step at
//!   a time, used to check the *step property* in quiescent states and as the
//!   semantic reference for the timed simulator in `cnet-sim`.
//!
//! # Conventions
//!
//! The paper indexes wires and balancer states starting from 1; this crate
//! uses 0-based indices throughout. A balancer with fan-out `f` starts in
//! state 0 and sends the `k`-th token it receives to output port `k mod f`.
//! The counter at sink `j` (0-based) of a network with fan-out `w` hands out
//! the values `j, j + w, j + 2w, …`.
//!
//! # Example
//!
//! ```
//! use cnet_topology::construct::bitonic;
//! use cnet_topology::state::NetworkState;
//!
//! let net = bitonic(8).expect("8 is a power of two");
//! assert_eq!(net.depth(), 6); // lg 8 * (lg 8 + 1) / 2
//!
//! // Push 20 tokens through input wire 3 and drain to quiescence: the
//! // step property must hold and the values handed out are exactly 0..20.
//! let mut st = NetworkState::new(&net);
//! let mut values: Vec<u64> = (0..20).map(|_| st.traverse(&net, 3).value).collect();
//! values.sort_unstable();
//! assert_eq!(values, (0..20).collect::<Vec<_>>());
//! assert!(st.output_counts_have_step_property());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod balancer;
pub mod bitset;
pub mod builder;
pub mod construct;
pub mod dot;
pub mod error;
pub mod ids;
pub mod network;
pub mod partition;
pub mod state;

pub use balancer::Balancer;
pub use builder::{LayeredBuilder, NetworkBuilder};
pub use error::{BuildError, TopologyError};
pub use ids::{BalancerId, SinkId, SourceId, WireId};
pub use network::{Layer, Network, NodeRef, WireEnd, WireStart};
pub use partition::{Partition, PartitionError};
