//! Partitioning a network across cluster nodes.
//!
//! A [`Partition`] cuts a *uniform* network into `N` contiguous layer
//! ranges, one per node. Node `k` owns the balancers whose depth lies in
//! `(bound[k], bound[k+1]]` and materialises them as a standalone
//! [`Network`] via [`Partition::sub_network`]. Adjacent sub-networks are
//! glued along *cuts*: the set of wires crossing a boundary depth, listed
//! in a canonical order so that sink `j` of node `k`'s sub-network is the
//! same physical wire as source `j` of node `k+1`'s. A token that exits
//! node `k` on output `j` therefore continues through node `k+1` on input
//! `j`, and the sequential composition of the sub-networks routes every
//! token exactly as the whole network does.
//!
//! The canonical cut orders are:
//!
//! - the *entry* cut (depth 0): input wires in [`SourceId`] order, so the
//!   cluster's entry ports are the whole network's entry ports;
//! - the *exit* cut (depth `d(G)`): output wires in [`SinkId`] order, so
//!   the final node's counters are the whole network's counters;
//! - interior cuts: crossing wires in [`WireId`] order. Both sides of a
//!   boundary compute the cut from the same whole network, so the order
//!   agrees without any coordination.
//!
//! Uniformity matters: in a uniform network every wire spans exactly one
//! layer boundary (a wire skipping layers would put source→sink paths of
//! different lengths through it), so each cut has exactly `w` wires and
//! every token crosses each boundary exactly once.

use crate::error::BuildError;
use crate::ids::{SinkId, SourceId, WireId};
use crate::network::{Network, WireEnd, WireStart};
use crate::builder::NetworkBuilder;
use std::error::Error;
use std::fmt;

/// Errors produced while planning a partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// Partitioning requires a uniform network (every wire spans exactly
    /// one layer boundary).
    NotUniform,
    /// Partitioning requires fan-in = fan-out.
    AsymmetricFan {
        /// The network's fan-in.
        fan_in: usize,
        /// The network's fan-out.
        fan_out: usize,
    },
    /// A partition must have at least one node.
    ZeroNodes,
    /// More nodes than balancer layers: some node would own no balancers.
    TooManyNodes {
        /// The requested node count.
        nodes: usize,
        /// The network's depth (number of balancer layers).
        depth: usize,
    },
    /// A boundary cut did not contain exactly `w` wires — the network is
    /// not layer-partitionable even though it claimed uniformity.
    RaggedCut {
        /// The boundary depth of the offending cut.
        depth: usize,
        /// How many wires crossed it.
        got: usize,
        /// The network fan `w` it should have been.
        want: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::NotUniform => {
                write!(f, "partitioning requires a uniform network")
            }
            PartitionError::AsymmetricFan { fan_in, fan_out } => {
                write!(f, "partitioning requires fan-in = fan-out, got {fan_in} in / {fan_out} out")
            }
            PartitionError::ZeroNodes => write!(f, "a partition needs at least one node"),
            PartitionError::TooManyNodes { nodes, depth } => {
                write!(f, "{nodes} nodes over {depth} balancer layers: a node would own nothing")
            }
            PartitionError::RaggedCut { depth, got, want } => {
                write!(f, "cut at depth {depth} has {got} wires, expected {want}")
            }
        }
    }
}

impl Error for PartitionError {}

/// A plan assigning contiguous layer ranges of a network to cluster nodes.
///
/// Built once (identically, by every node and every client) from the whole
/// network with [`Partition::contiguous`]; node `k`'s share is then
/// materialised with [`Partition::sub_network`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    fan: usize,
    /// Boundary depths: node `k` owns balancers at depths
    /// `bounds[k]+1 ..= bounds[k+1]`. `bounds[0] = 0`,
    /// `bounds[nodes] = depth(G)`.
    bounds: Vec<usize>,
    /// `cuts[k]` is the boundary cut at depth `bounds[k]`, in canonical
    /// order; `cuts[0]` is the entry cut, `cuts[nodes]` the exit cut.
    cuts: Vec<Vec<WireId>>,
}

impl Partition {
    /// Plans a contiguous layer partition of `net` across `nodes` nodes,
    /// balancing layer counts (the first `depth % nodes` nodes own one
    /// extra layer).
    ///
    /// # Errors
    ///
    /// Rejects non-uniform or fan-asymmetric networks, a zero node count,
    /// more nodes than layers, and (defensively) any boundary whose cut is
    /// not exactly `w` wires.
    pub fn contiguous(net: &Network, nodes: usize) -> Result<Partition, PartitionError> {
        if nodes == 0 {
            return Err(PartitionError::ZeroNodes);
        }
        if !net.is_uniform() {
            return Err(PartitionError::NotUniform);
        }
        let Some(fan) = net.fan() else {
            return Err(PartitionError::AsymmetricFan {
                fan_in: net.fan_in(),
                fan_out: net.fan_out(),
            });
        };
        let depth = net.depth();
        if nodes > depth {
            return Err(PartitionError::TooManyNodes { nodes, depth });
        }
        let (base, rem) = (depth / nodes, depth % nodes);
        let mut bounds = Vec::with_capacity(nodes + 1);
        bounds.push(0);
        for k in 0..nodes {
            bounds.push(bounds[k] + base + usize::from(k < rem));
        }
        let mut cuts = Vec::with_capacity(nodes + 1);
        for (k, &d) in bounds.iter().enumerate() {
            let cut = if k == 0 {
                (0..fan).map(|i| net.source_wire(SourceId(i))).collect::<Vec<_>>()
            } else if k == nodes {
                (0..fan).map(|j| net.sink_wire(SinkId(j))).collect()
            } else {
                net.wires().filter(|&(id, _)| net.wire_depth(id) == d).map(|(id, _)| id).collect()
            };
            if cut.len() != fan {
                return Err(PartitionError::RaggedCut { depth: d, got: cut.len(), want: fan });
            }
            cuts.push(cut);
        }
        Ok(Partition { fan, bounds, cuts })
    }

    /// The number of nodes in the plan.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The common fan `w` of the partitioned network and of every cut.
    #[inline]
    pub fn fan(&self) -> usize {
        self.fan
    }

    /// Node `k`'s balancer-depth range as `(lo, hi]` boundaries: node `k`
    /// owns the balancers at depths `lo+1 ..= hi`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= nodes()`.
    #[inline]
    pub fn layer_range(&self, k: usize) -> (usize, usize) {
        (self.bounds[k], self.bounds[k + 1])
    }

    /// The boundary cut at index `k` (`0` = entry cut, `nodes()` = exit
    /// cut), in canonical order: position `j` in `cut(k)` is sink `j` of
    /// node `k-1`'s sub-network and source `j` of node `k`'s.
    ///
    /// # Panics
    ///
    /// Panics if `k > nodes()`.
    #[inline]
    pub fn cut(&self, k: usize) -> &[WireId] {
        &self.cuts[k]
    }

    /// Materialises node `k`'s share of `net` as a standalone network:
    /// the balancers in its layer range, with entry-cut wires re-rooted at
    /// sources and exit-cut wires terminated at sinks (in canonical cut
    /// order).
    ///
    /// `net` must be the same network the plan was built from.
    ///
    /// # Panics
    ///
    /// Panics if `k >= nodes()` or if `net` is not the planned network.
    pub fn sub_network(&self, net: &Network, k: usize) -> Network {
        let (lo, hi) = self.layer_range(k);
        let entry = &self.cuts[k];
        let exit = &self.cuts[k + 1];
        let position = |cut: &[WireId], w: WireId| cut.iter().position(|&c| c == w);

        let mut builder = NetworkBuilder::new(self.fan, self.fan);
        // Owned balancers, remapped densely in BalancerId order (so the
        // sub-network's structure is deterministic given the plan).
        let owned: Vec<_> = net
            .balancers()
            .filter(|&(id, _)| {
                let d = net.balancer_depth(id);
                lo < d && d <= hi
            })
            .map(|(id, b)| (id, builder.add_balancer(b.fan_in(), b.fan_out())))
            .collect();
        let remap = |old| owned.iter().find(|&&(o, _)| o == old).map(|&(_, n)| n);

        for (id, wire) in net.wires() {
            let start = if let Some(i) = position(entry, id) {
                WireStart::Source(SourceId(i))
            } else {
                match wire.start {
                    WireStart::Balancer { balancer, port } => match remap(balancer) {
                        Some(b) => WireStart::Balancer { balancer: b, port },
                        None => continue,
                    },
                    WireStart::Source(_) => continue,
                }
            };
            let end = if let Some(j) = position(exit, id) {
                WireEnd::Sink(SinkId(j))
            } else {
                match wire.end {
                    WireEnd::Balancer { balancer, port } => match remap(balancer) {
                        Some(b) => WireEnd::Balancer { balancer: b, port },
                        None => continue,
                    },
                    WireEnd::Sink(_) => continue,
                }
            };
            builder
                .connect(start, end)
                .unwrap_or_else(|e| panic!("planned wire w{} rejected: {e}", id.index()));
        }
        builder.finish().unwrap_or_else(|e: BuildError| {
            panic!("sub-network {k} of a planned partition failed to assemble: {e}")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{bitonic, periodic};

    #[test]
    fn rejects_degenerate_plans() {
        let net = bitonic(4).expect("B(4)");
        assert_eq!(Partition::contiguous(&net, 0), Err(PartitionError::ZeroNodes));
        let depth = net.depth();
        assert_eq!(
            Partition::contiguous(&net, depth + 1),
            Err(PartitionError::TooManyNodes { nodes: depth + 1, depth })
        );
    }

    #[test]
    fn single_node_plan_reproduces_the_whole_network_shape() {
        let net = bitonic(8).expect("B(8)");
        let plan = Partition::contiguous(&net, 1).expect("one node");
        assert_eq!(plan.nodes(), 1);
        assert_eq!(plan.layer_range(0), (0, net.depth()));
        let sub = plan.sub_network(&net, 0);
        assert_eq!(sub.size(), net.size());
        assert_eq!(sub.depth(), net.depth());
        assert_eq!(sub.fan(), net.fan());
        assert!(sub.is_uniform());
    }

    #[test]
    fn two_node_plan_splits_balancers_exactly_and_keeps_cut_width() {
        for fan in [2usize, 4, 8] {
            let net = bitonic(fan).expect("bitonic");
            let nodes = 2.min(net.depth());
            let plan = Partition::contiguous(&net, nodes).expect("plan");
            let mut total = 0;
            for k in 0..nodes {
                let sub = plan.sub_network(&net, k);
                let (lo, hi) = plan.layer_range(k);
                assert_eq!(sub.depth(), hi - lo, "node {k} owns its layer count");
                assert_eq!(sub.fan(), Some(fan));
                assert!(sub.is_uniform(), "sub-networks stay uniform");
                total += sub.size();
                assert_eq!(plan.cut(k).len(), fan);
            }
            assert_eq!(plan.cut(nodes).len(), fan);
            assert_eq!(total, net.size(), "every balancer owned exactly once");
        }
    }

    #[test]
    fn layer_counts_balance_across_nodes() {
        let net = periodic(8).expect("periodic");
        let depth = net.depth();
        for nodes in 1..=depth.min(4) {
            let plan = Partition::contiguous(&net, nodes).expect("plan");
            let mut sizes: Vec<usize> =
                (0..nodes).map(|k| { let (lo, hi) = plan.layer_range(k); hi - lo }).collect();
            assert_eq!(sizes.iter().sum::<usize>(), depth);
            sizes.sort_unstable();
            assert!(sizes[sizes.len() - 1] - sizes[0] <= 1, "balanced: {sizes:?}");
        }
    }

    #[test]
    fn adjacent_cuts_agree_on_wire_identity() {
        // Sink j of node k's sub-network and source j of node k+1's must
        // name the same whole-network wire — the gluing invariant the
        // forwarding path depends on.
        let net = bitonic(8).expect("B(8)");
        let plan = Partition::contiguous(&net, 3).expect("plan");
        for k in 0..plan.nodes() - 1 {
            assert_eq!(plan.cut(k + 1).len(), plan.fan());
            // The cut is a set of distinct wires.
            let mut seen = plan.cut(k + 1).to_vec();
            seen.sort_unstable_by_key(|w| w.index());
            seen.dedup();
            assert_eq!(seen.len(), plan.fan());
        }
    }
}
