//! Builders for assembling balancing networks.
//!
//! Two levels are provided:
//!
//! * [`NetworkBuilder`] — the raw graph API: declare balancers with arbitrary
//!   fan-in/fan-out, then wire up every endpoint explicitly. Validates full
//!   connectivity and acyclicity.
//! * [`LayeredBuilder`] — the "horizontal lines" API matching the paper's
//!   figures: `w` lines run left to right, and each call drops a regular
//!   balancer across a chosen set of lines. Most classic constructions
//!   (bitonic, periodic, mergers, blocks) are built this way.

use crate::balancer::Balancer;
use crate::error::BuildError;
use crate::ids::{BalancerId, SinkId, SourceId, WireId};
use crate::network::{Network, Wire, WireEnd, WireStart};

/// Raw graph builder for balancing networks.
///
/// # Example
///
/// Build a single (2,2)-balancer network by hand:
///
/// ```
/// use cnet_topology::{NetworkBuilder, WireStart, WireEnd};
/// use cnet_topology::ids::{SourceId, SinkId};
///
/// let mut nb = NetworkBuilder::new(2, 2);
/// let b = nb.add_balancer(2, 2);
/// nb.connect(WireStart::Source(SourceId(0)), WireEnd::Balancer { balancer: b, port: 0 })?;
/// nb.connect(WireStart::Source(SourceId(1)), WireEnd::Balancer { balancer: b, port: 1 })?;
/// nb.connect(WireStart::Balancer { balancer: b, port: 0 }, WireEnd::Sink(SinkId(0)))?;
/// nb.connect(WireStart::Balancer { balancer: b, port: 1 }, WireEnd::Sink(SinkId(1)))?;
/// let net = nb.finish()?;
/// assert_eq!(net.depth(), 1);
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    fan_in: usize,
    fan_out: usize,
    /// (fan_in, fan_out) of each declared balancer.
    balancer_fans: Vec<(usize, usize)>,
    wires: Vec<Wire>,
    source_out: Vec<Option<WireId>>,
    sink_in: Vec<Option<WireId>>,
    bal_in: Vec<Vec<Option<WireId>>>,
    bal_out: Vec<Vec<Option<WireId>>>,
}

impl NetworkBuilder {
    /// Starts building a `(w_in, w_out)`-balancing network.
    pub fn new(fan_in: usize, fan_out: usize) -> Self {
        NetworkBuilder {
            fan_in,
            fan_out,
            balancer_fans: Vec::new(),
            wires: Vec::new(),
            source_out: vec![None; fan_in],
            sink_in: vec![None; fan_out],
            bal_in: Vec::new(),
            bal_out: Vec::new(),
        }
    }

    /// Declares a new `(f_in, f_out)`-balancer and returns its id. Both fans
    /// must be at least 1 (checked at [`finish`](Self::finish)).
    pub fn add_balancer(&mut self, f_in: usize, f_out: usize) -> BalancerId {
        let id = BalancerId(self.balancer_fans.len());
        self.balancer_fans.push((f_in, f_out));
        self.bal_in.push(vec![None; f_in]);
        self.bal_out.push(vec![None; f_out]);
        id
    }

    /// Connects a wire from `start` to `end`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::IndexOutOfRange`] if either endpoint refers to a
    /// nonexistent node or port, and [`BuildError::DoublyConnected`] if either
    /// endpoint already has a wire.
    pub fn connect(&mut self, start: WireStart, end: WireEnd) -> Result<WireId, BuildError> {
        let id = WireId(self.wires.len());
        // Validate and claim the start endpoint.
        match start {
            WireStart::Source(s) => {
                let slot = self
                    .source_out
                    .get_mut(s.index())
                    .ok_or(BuildError::IndexOutOfRange { endpoint: format!("{s}") })?;
                if slot.is_some() {
                    return Err(BuildError::DoublyConnected { endpoint: format!("{s}") });
                }
                *slot = Some(id);
            }
            WireStart::Balancer { balancer, port } => {
                let ports = self
                    .bal_out
                    .get_mut(balancer.index())
                    .ok_or(BuildError::IndexOutOfRange { endpoint: format!("{balancer}") })?;
                let slot = ports.get_mut(port).ok_or(BuildError::IndexOutOfRange {
                    endpoint: format!("{balancer} output port {port}"),
                })?;
                if slot.is_some() {
                    return Err(BuildError::DoublyConnected {
                        endpoint: format!("{balancer} output port {port}"),
                    });
                }
                *slot = Some(id);
            }
        }
        // Validate and claim the end endpoint. On failure, release the start.
        let end_result: Result<(), BuildError> = (|| {
            match end {
                WireEnd::Sink(s) => {
                    let slot = self
                        .sink_in
                        .get_mut(s.index())
                        .ok_or(BuildError::IndexOutOfRange { endpoint: format!("{s}") })?;
                    if slot.is_some() {
                        return Err(BuildError::DoublyConnected { endpoint: format!("{s}") });
                    }
                    *slot = Some(id);
                }
                WireEnd::Balancer { balancer, port } => {
                    let ports = self.bal_in.get_mut(balancer.index()).ok_or(
                        BuildError::IndexOutOfRange { endpoint: format!("{balancer}") },
                    )?;
                    let slot = ports.get_mut(port).ok_or(BuildError::IndexOutOfRange {
                        endpoint: format!("{balancer} input port {port}"),
                    })?;
                    if slot.is_some() {
                        return Err(BuildError::DoublyConnected {
                            endpoint: format!("{balancer} input port {port}"),
                        });
                    }
                    *slot = Some(id);
                }
            }
            Ok(())
        })();
        if let Err(e) = end_result {
            // Roll back the claimed start endpoint.
            match start {
                WireStart::Source(s) => self.source_out[s.index()] = None,
                WireStart::Balancer { balancer, port } => {
                    self.bal_out[balancer.index()][port] = None;
                }
            }
            return Err(e);
        }
        self.wires.push(Wire { start, end });
        Ok(id)
    }

    /// Validates connectivity and acyclicity and produces the [`Network`].
    ///
    /// # Errors
    ///
    /// * [`BuildError::ZeroFan`] if a balancer has fan-in or fan-out 0.
    /// * [`BuildError::Unconnected`] if any source, sink, or balancer port
    ///   has no wire.
    /// * [`BuildError::Cyclic`] if the wires form a directed cycle.
    pub fn finish(self) -> Result<Network, BuildError> {
        for (i, &(f_in, f_out)) in self.balancer_fans.iter().enumerate() {
            if f_in == 0 || f_out == 0 {
                return Err(BuildError::ZeroFan { balancer: i });
            }
        }
        let mut source_wires = Vec::with_capacity(self.fan_in);
        for (i, w) in self.source_out.iter().enumerate() {
            source_wires.push(w.ok_or_else(|| BuildError::Unconnected {
                endpoint: format!("{}", SourceId(i)),
            })?);
        }
        let mut sink_wires = Vec::with_capacity(self.fan_out);
        for (j, w) in self.sink_in.iter().enumerate() {
            sink_wires.push(w.ok_or_else(|| BuildError::Unconnected {
                endpoint: format!("{}", SinkId(j)),
            })?);
        }
        let mut balancers = Vec::with_capacity(self.balancer_fans.len());
        for (i, (ins, outs)) in self.bal_in.iter().zip(&self.bal_out).enumerate() {
            let inputs: Option<Vec<WireId>> = ins.iter().copied().collect();
            let outputs: Option<Vec<WireId>> = outs.iter().copied().collect();
            match (inputs, outputs) {
                (Some(inputs), Some(outputs)) => balancers.push(Balancer::new(inputs, outputs)),
                _ => {
                    return Err(BuildError::Unconnected {
                        endpoint: format!("a port of {}", BalancerId(i)),
                    })
                }
            }
        }

        let topo_order = kahn_topo_order(&balancers, &self.wires)?;
        Ok(Network::assemble(
            self.fan_in,
            self.fan_out,
            balancers,
            self.wires,
            source_wires,
            sink_wires,
            &topo_order,
        ))
    }
}

/// Kahn's algorithm over the balancer-to-balancer edges.
fn kahn_topo_order(balancers: &[Balancer], wires: &[Wire]) -> Result<Vec<BalancerId>, BuildError> {
    let n = balancers.len();
    let mut indegree = vec![0usize; n];
    // adjacency: for each balancer, the balancers its outputs feed.
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for w in wires {
        if let (WireStart::Balancer { balancer: from, .. }, WireEnd::Balancer { balancer: to, .. }) =
            (w.start, w.end)
        {
            succ[from.index()].push(to.index());
            indegree[to.index()] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(BalancerId(i));
        for &j in &succ[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                queue.push(j);
            }
        }
    }
    if order.len() != n {
        return Err(BuildError::Cyclic);
    }
    Ok(order)
}

/// Line-oriented builder mirroring the paper's figures: `w` horizontal lines,
/// balancers stretched vertically across chosen lines.
///
/// Each line starts at a source node and ends at the same-numbered sink node.
/// [`balancer`](Self::balancer) drops a regular balancer across lines; input
/// and output port `k` both sit on `lines[k]`.
///
/// # Example
///
/// The (2,2)-balancer network, then a 3-line network with a (3,3)-balancer:
///
/// ```
/// use cnet_topology::LayeredBuilder;
///
/// let mut lb = LayeredBuilder::new(3);
/// lb.balancer(&[0, 1, 2]);
/// let net = lb.finish()?;
/// assert_eq!(net.size(), 1);
/// assert_eq!(net.balancer(cnet_topology::BalancerId(0)).fan_in(), 3);
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
#[derive(Debug)]
pub struct LayeredBuilder {
    inner: NetworkBuilder,
    width: usize,
    /// For each line, where the next wire segment on that line begins.
    heads: Vec<WireStart>,
}

impl LayeredBuilder {
    /// Starts a builder with `width` horizontal lines (fan-in = fan-out =
    /// `width`).
    pub fn new(width: usize) -> Self {
        LayeredBuilder {
            inner: NetworkBuilder::new(width, width),
            width,
            heads: (0..width).map(|i| WireStart::Source(SourceId(i))).collect(),
        }
    }

    /// The number of lines.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Places a regular balancer across the given lines: input port `k` is
    /// fed by the current segment of `lines[k]`, and output port `k`
    /// continues `lines[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is empty, contains duplicates, or refers to a line
    /// `>= width()`. (These are programming errors in a construction, not
    /// recoverable conditions.)
    pub fn balancer(&mut self, lines: &[usize]) -> BalancerId {
        assert!(!lines.is_empty(), "balancer must span at least one line");
        assert!(
            lines.iter().all(|&l| l < self.width),
            "line out of range for width {}",
            self.width
        );
        let mut seen = vec![false; self.width];
        for &l in lines {
            assert!(!seen[l], "duplicate line {l} in balancer");
            seen[l] = true;
        }
        let b = self.inner.add_balancer(lines.len(), lines.len());
        for (port, &line) in lines.iter().enumerate() {
            let start = self.heads[line];
            self.inner
                .connect(start, WireEnd::Balancer { balancer: b, port })
                .expect("layered builder maintains single-connection invariant");
            self.heads[line] = WireStart::Balancer { balancer: b, port };
        }
        b
    }

    /// Crosses wires: after this call, the token stream previously heading
    /// down line `order[j]` continues on line `j`. Wires are pointers, so a
    /// permutation costs nothing and adds no depth — this models the free
    /// wire crossings in the paper's figures.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..width()`.
    pub fn permute(&mut self, order: &[usize]) {
        assert_eq!(order.len(), self.width, "permutation must cover every line");
        let mut seen = vec![false; self.width];
        for &o in order {
            assert!(o < self.width, "line {o} out of range for width {}", self.width);
            assert!(!seen[o], "duplicate line {o} in permutation");
            seen[o] = true;
        }
        self.heads = order.iter().map(|&o| self.heads[o]).collect();
    }

    /// Embeds a copy of an entire sub-network across the given lines:
    /// sub-source `k` is fed by the current segment of `lines[k]`, and
    /// sub-sink `k` continues `lines[k]`.
    ///
    /// The sub-network must have fan-in = fan-out = `lines.len()`.
    ///
    /// # Panics
    ///
    /// Panics on line misuse (as in [`balancer`](Self::balancer)) or if the
    /// sub-network's fan does not match `lines.len()`.
    pub fn embed(&mut self, sub: &Network, lines: &[usize]) {
        assert_eq!(sub.fan_in(), lines.len(), "sub-network fan-in mismatch");
        assert_eq!(sub.fan_out(), lines.len(), "sub-network fan-out mismatch");
        assert!(
            lines.iter().all(|&l| l < self.width),
            "line out of range for width {}",
            self.width
        );

        // Copy balancers.
        let mut bal_map: Vec<BalancerId> = Vec::with_capacity(sub.size());
        for (_, bal) in sub.balancers() {
            bal_map.push(self.inner.add_balancer(bal.fan_in(), bal.fan_out()));
        }
        // Sub-source starts must resolve against the heads as they were when
        // `embed` was called, not against heads already moved by sub-sink
        // wires processed earlier in the loop — so snapshot them first.
        let entry_heads: Vec<WireStart> = lines.iter().map(|&l| self.heads[l]).collect();
        let resolve_start = |wire_start: WireStart| -> WireStart {
            match wire_start {
                WireStart::Source(s) => entry_heads[s.index()],
                WireStart::Balancer { balancer, port } => WireStart::Balancer {
                    balancer: bal_map[balancer.index()],
                    port,
                },
            }
        };
        for (_, wire) in sub.wires() {
            let start = resolve_start(wire.start);
            match wire.end {
                WireEnd::Sink(s) => {
                    // Don't create a wire: the sub-sink just moves the head of
                    // the line to the feeding balancer port (or propagates the
                    // original head if the sub-wire ran source → sink).
                    self.heads[lines[s.index()]] = start;
                }
                WireEnd::Balancer { balancer, port } => {
                    self.inner
                        .connect(
                            start,
                            WireEnd::Balancer { balancer: bal_map[balancer.index()], port },
                        )
                        .expect("embed preserves single-connection invariant");
                }
            }
        }
    }

    /// Connects each line to its sink and validates the network.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`]s from validation (the layered discipline
    /// prevents most of them by construction).
    pub fn finish(mut self) -> Result<Network, BuildError> {
        for line in 0..self.width {
            let start = self.heads[line];
            self.inner.connect(start, WireEnd::Sink(SinkId(line)))?;
        }
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconnected_source_is_reported() {
        let nb = NetworkBuilder::new(1, 0);
        let err = nb.finish().unwrap_err();
        assert!(matches!(err, BuildError::Unconnected { .. }));
    }

    #[test]
    fn unconnected_balancer_port_is_reported() {
        let mut nb = NetworkBuilder::new(1, 1);
        let b = nb.add_balancer(1, 2);
        nb.connect(WireStart::Source(SourceId(0)), WireEnd::Balancer { balancer: b, port: 0 })
            .unwrap();
        nb.connect(WireStart::Balancer { balancer: b, port: 0 }, WireEnd::Sink(SinkId(0)))
            .unwrap();
        // output port 1 dangling
        let err = nb.finish().unwrap_err();
        assert!(matches!(err, BuildError::Unconnected { .. }));
    }

    #[test]
    fn double_connection_is_rejected_and_rolled_back() {
        let mut nb = NetworkBuilder::new(2, 2);
        let b = nb.add_balancer(2, 2);
        nb.connect(WireStart::Source(SourceId(0)), WireEnd::Balancer { balancer: b, port: 0 })
            .unwrap();
        let err = nb
            .connect(WireStart::Source(SourceId(1)), WireEnd::Balancer { balancer: b, port: 0 })
            .unwrap_err();
        assert!(matches!(err, BuildError::DoublyConnected { .. }));
        // The failed connect must not have consumed source 1.
        nb.connect(WireStart::Source(SourceId(1)), WireEnd::Balancer { balancer: b, port: 1 })
            .unwrap();
        nb.connect(WireStart::Balancer { balancer: b, port: 0 }, WireEnd::Sink(SinkId(0)))
            .unwrap();
        nb.connect(WireStart::Balancer { balancer: b, port: 1 }, WireEnd::Sink(SinkId(1)))
            .unwrap();
        assert!(nb.finish().is_ok());
    }

    #[test]
    fn cycle_is_detected() {
        let mut nb = NetworkBuilder::new(1, 1);
        let a = nb.add_balancer(2, 2);
        let b = nb.add_balancer(2, 2);
        nb.connect(WireStart::Source(SourceId(0)), WireEnd::Balancer { balancer: a, port: 0 })
            .unwrap();
        // a -> b, b -> a: cycle.
        nb.connect(
            WireStart::Balancer { balancer: a, port: 0 },
            WireEnd::Balancer { balancer: b, port: 0 },
        )
        .unwrap();
        nb.connect(
            WireStart::Balancer { balancer: b, port: 0 },
            WireEnd::Balancer { balancer: a, port: 1 },
        )
        .unwrap();
        nb.connect(
            WireStart::Balancer { balancer: a, port: 1 },
            WireEnd::Balancer { balancer: b, port: 1 },
        )
        .unwrap();
        nb.connect(WireStart::Balancer { balancer: b, port: 1 }, WireEnd::Sink(SinkId(0)))
            .unwrap();
        let err = nb.finish().unwrap_err();
        assert_eq!(err, BuildError::Cyclic);
    }

    #[test]
    fn zero_fan_is_reported() {
        let mut nb = NetworkBuilder::new(0, 0);
        nb.add_balancer(0, 1);
        let err = nb.finish().unwrap_err();
        assert!(matches!(err, BuildError::ZeroFan { balancer: 0 }));
    }

    #[test]
    fn index_out_of_range_is_reported() {
        let mut nb = NetworkBuilder::new(1, 1);
        let err = nb
            .connect(WireStart::Source(SourceId(5)), WireEnd::Sink(SinkId(0)))
            .unwrap_err();
        assert!(matches!(err, BuildError::IndexOutOfRange { .. }));
    }

    #[test]
    fn layered_builder_wires_lines_in_order() {
        let mut lb = LayeredBuilder::new(4);
        let b = lb.balancer(&[1, 3]);
        let net = lb.finish().unwrap();
        assert_eq!(net.size(), 1);
        // Lines 0 and 2 run straight through.
        let w0 = net.source_wire(SourceId(0));
        assert!(matches!(net.wire(w0).end, WireEnd::Sink(SinkId(0))));
        // Line 1 enters the balancer on port 0, line 3 on port 1.
        let w1 = net.source_wire(SourceId(1));
        assert_eq!(net.wire(w1).end, WireEnd::Balancer { balancer: b, port: 0 });
        let w3 = net.source_wire(SourceId(3));
        assert_eq!(net.wire(w3).end, WireEnd::Balancer { balancer: b, port: 1 });
        // Output port 0 continues line 1.
        let out0 = net.balancer(b).output(0);
        assert!(matches!(net.wire(out0).end, WireEnd::Sink(SinkId(1))));
    }

    #[test]
    #[should_panic(expected = "duplicate line")]
    fn layered_builder_rejects_duplicate_lines() {
        let mut lb = LayeredBuilder::new(2);
        lb.balancer(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "line out of range")]
    fn layered_builder_rejects_bad_line() {
        let mut lb = LayeredBuilder::new(2);
        lb.balancer(&[0, 2]);
    }

    #[test]
    fn permute_crosses_wires_without_balancers() {
        // A single balancer, then swap the two lines: its top output now
        // feeds sink 1.
        let mut lb = LayeredBuilder::new(2);
        let b = lb.balancer(&[0, 1]);
        lb.permute(&[1, 0]);
        let net = lb.finish().unwrap();
        assert_eq!(net.size(), 1);
        let top = net.balancer(b).output(0);
        assert!(matches!(net.wire(top).end, WireEnd::Sink(SinkId(1))));
        let bottom = net.balancer(b).output(1);
        assert!(matches!(net.wire(bottom).end, WireEnd::Sink(SinkId(0))));
    }

    #[test]
    fn permute_is_free_of_depth() {
        let mut lb = LayeredBuilder::new(4);
        lb.balancer(&[0, 1]);
        lb.permute(&[3, 2, 1, 0]);
        lb.balancer(&[0, 1]);
        let net = lb.finish().unwrap();
        // Second balancer is fed by the (previous) lines 3 and 2: straight
        // source wires, so it sits at depth 1, not 2.
        assert_eq!(net.depth(), 1);
        assert_eq!(net.size(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate line")]
    fn permute_rejects_non_permutations() {
        let mut lb = LayeredBuilder::new(3);
        lb.permute(&[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "cover every line")]
    fn permute_rejects_wrong_length() {
        let mut lb = LayeredBuilder::new(3);
        lb.permute(&[0, 1]);
    }

    #[test]
    fn embed_copies_subnetwork() {
        // A sub-network of one balancer on two lines, embedded twice in
        // series on lines (0,1) of a 2-line network = two balancers in series.
        let mut sub_b = LayeredBuilder::new(2);
        sub_b.balancer(&[0, 1]);
        let sub = sub_b.finish().unwrap();

        let mut lb = LayeredBuilder::new(2);
        lb.embed(&sub, &[0, 1]);
        lb.embed(&sub, &[0, 1]);
        let net = lb.finish().unwrap();
        assert_eq!(net.size(), 2);
        assert_eq!(net.depth(), 2);
        assert!(net.is_uniform());
    }

    #[test]
    fn embed_crossed_lines_permutes() {
        // Embedding on reversed lines flips which sink each port reaches.
        let mut sub_b = LayeredBuilder::new(2);
        sub_b.balancer(&[0, 1]);
        let sub = sub_b.finish().unwrap();

        let mut lb = LayeredBuilder::new(2);
        lb.embed(&sub, &[1, 0]);
        let net = lb.finish().unwrap();
        // The balancer's output port 0 (sub-line 0) continues outer line 1.
        let b = BalancerId(0);
        let out0 = net.balancer(b).output(0);
        assert!(matches!(net.wire(out0).end, WireEnd::Sink(SinkId(1))));
    }
}
