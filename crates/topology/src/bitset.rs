//! A compact fixed-universe bit set used for sink *valencies*.
//!
//! Valency analysis (Section 5.3 of the paper) computes, for every wire and
//! balancer, the set of sink nodes reachable from it. Networks of fan `w`
//! have `w` sinks but can have thousands of wires, so valencies are stored as
//! packed bit sets rather than `BTreeSet`s.

use cnet_util::json_struct;
use std::fmt;

/// A set of small integers over a fixed universe `0..universe`.
///
/// # Example
///
/// ```
/// use cnet_topology::bitset::BitSet;
///
/// let mut a = BitSet::new(8);
/// a.insert(1);
/// a.insert(5);
/// let mut b = BitSet::new(8);
/// b.insert(5);
/// assert!(b.is_subset(&a));
/// assert_eq!(a.len(), 2);
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    universe: usize,
    words: Vec<u64>,
}

json_struct!(BitSet { universe, words });

impl BitSet {
    /// Creates an empty set over the universe `0..universe`.
    pub fn new(universe: usize) -> Self {
        BitSet {
            universe,
            words: vec![0; universe.div_ceil(64)],
        }
    }

    /// Creates the full set `{0, …, universe-1}`.
    pub fn full(universe: usize) -> Self {
        let mut s = BitSet::new(universe);
        for i in 0..universe {
            s.insert(i);
        }
        s
    }

    /// Creates a set containing exactly the given elements.
    ///
    /// # Panics
    ///
    /// Panics if any element is `>= universe`.
    pub fn from_elems<I: IntoIterator<Item = usize>>(universe: usize, elems: I) -> Self {
        let mut s = BitSet::new(universe);
        for e in elems {
            s.insert(e);
        }
        s
    }

    /// Returns the size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Inserts `i` into the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.universe, "element {i} out of universe {}", self.universe);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes `i` from the set (no-op if absent).
    pub fn remove(&mut self, i: usize) {
        if i < self.universe {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Tests membership of `i`.
    pub fn contains(&self, i: usize) -> bool {
        i < self.universe && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Returns the union of two sets.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns the intersection of two sets.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut out = self.clone();
        for (a, b) in out.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        out
    }

    /// Returns `true` if the two sets share no elements.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Returns the smallest element, or `None` if empty.
    pub fn min(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Returns the largest element, or `None` if empty.
    pub fn max(&self) -> Option<usize> {
        self.iter().next_back()
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            front: 0,
            back: self.universe,
        }
    }

    /// Returns `true` if every element of `self` is strictly less than every
    /// element of `other` (the paper's `V1 ≺ V2` relation on valencies).
    ///
    /// Both sets must be non-empty for the relation to hold.
    pub fn precedes(&self, other: &BitSet) -> bool {
        match (self.max(), other.min()) {
            (Some(a), Some(b)) => a < b,
            _ => false,
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects elements into a set whose universe is one past the maximum
    /// element (or 0 for an empty iterator).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let elems: Vec<usize> = iter.into_iter().collect();
        let universe = elems.iter().copied().max().map_or(0, |m| m + 1);
        BitSet::from_elems(universe, elems)
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

/// Double-ended iterator over the elements of a [`BitSet`].
pub struct Iter<'a> {
    set: &'a BitSet,
    front: usize,
    back: usize,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.front < self.back {
            let i = self.front;
            self.front += 1;
            if self.set.contains(i) {
                return Some(i);
            }
        }
        None
    }
}

impl DoubleEndedIterator for Iter<'_> {
    fn next_back(&mut self) -> Option<usize> {
        while self.back > self.front {
            self.back -= 1;
            if self.set.contains(self.back) {
                return Some(self.back);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_util::proptest::prelude::*;

    #[test]
    fn empty_and_full() {
        let e = BitSet::new(10);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.min(), None);
        assert_eq!(e.max(), None);
        let f = BitSet::full(10);
        assert_eq!(f.len(), 10);
        assert_eq!(f.min(), Some(0));
        assert_eq!(f.max(), Some(9));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(100);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(99));
        assert!(!s.contains(50));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_universe_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    fn precedes_relation() {
        let a = BitSet::from_elems(8, [0, 1, 2]);
        let b = BitSet::from_elems(8, [3, 4]);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        // overlapping sets are unordered
        let c = BitSet::from_elems(8, [2, 5]);
        assert!(!a.precedes(&c));
        assert!(!c.precedes(&a));
        // empty sets never precede anything
        let e = BitSet::new(8);
        assert!(!e.precedes(&b));
        assert!(!b.precedes(&e));
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_elems(70, [0, 10, 65]);
        let b = BitSet::from_elems(70, [10, 20]);
        assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), vec![0, 10, 20, 65]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![10]);
        assert!(!a.is_disjoint(&b));
        assert!(BitSet::from_elems(70, [1]).is_disjoint(&b));
        assert!(BitSet::from_elems(70, [10]).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn double_ended_iteration() {
        let s = BitSet::from_elems(128, [3, 64, 100]);
        assert_eq!(s.iter().rev().collect::<Vec<_>>(), vec![100, 64, 3]);
        let mut it = s.iter();
        assert_eq!(it.next(), Some(3));
        assert_eq!(it.next_back(), Some(100));
        assert_eq!(it.next(), Some(64));
        assert_eq!(it.next(), None);
        assert_eq!(it.next_back(), None);
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: BitSet = [5usize, 2, 9].into_iter().collect();
        assert_eq!(s.universe(), 10);
        assert_eq!(s.len(), 3);
        let empty: BitSet = std::iter::empty().collect();
        assert_eq!(empty.universe(), 0);
        assert!(empty.is_empty());
    }

    proptest! {
        #[test]
        fn union_len_bounds(xs in prop::collection::vec(0usize..256, 0..64),
                            ys in prop::collection::vec(0usize..256, 0..64)) {
            let a = BitSet::from_elems(256, xs.iter().copied());
            let b = BitSet::from_elems(256, ys.iter().copied());
            let u = a.union(&b);
            prop_assert!(u.len() >= a.len().max(b.len()));
            prop_assert!(u.len() <= a.len() + b.len());
            for x in xs { prop_assert!(u.contains(x)); }
            for y in ys { prop_assert!(u.contains(y)); }
        }

        #[test]
        fn iter_is_sorted_and_consistent(xs in prop::collection::vec(0usize..200, 0..80)) {
            let s = BitSet::from_elems(200, xs.iter().copied());
            let elems: Vec<usize> = s.iter().collect();
            prop_assert!(elems.windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(elems.len(), s.len());
            let mut sorted: Vec<usize> = xs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(elems, sorted);
        }

        #[test]
        fn disjoint_iff_empty_intersection(
            xs in prop::collection::vec(0usize..64, 0..32),
            ys in prop::collection::vec(0usize..64, 0..32),
        ) {
            let a = BitSet::from_elems(64, xs);
            let b = BitSet::from_elems(64, ys);
            prop_assert_eq!(a.is_disjoint(&b), a.intersection(&b).is_empty());
        }
    }
}
