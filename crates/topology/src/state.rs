//! Sequential token semantics: balancer states, counters, and the step
//! property.
//!
//! [`NetworkState`] is the semantic reference for a balancing network: it
//! routes one token at a time, instantaneously, exactly as the paper's
//! transition steps `BAL` and `COUNT` prescribe (Section 2.2). The timed
//! simulator in `cnet-sim` interleaves *partial* traversals; it uses the same
//! state-update rules and is checked against this reference.

use crate::ids::{BalancerId, SinkId, SourceId, WireId};
use crate::network::{Network, WireEnd};
use cnet_util::json_struct;

/// One balancer transition step taken by a token: the paper's
/// `BAL(T, B, i, j)` with the token and process left implicit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BalancerStep {
    /// The balancer traversed.
    pub balancer: BalancerId,
    /// The input port the token entered on.
    pub in_port: usize,
    /// The output port the token exited on.
    pub out_port: usize,
}

json_struct!(BalancerStep { balancer, in_port, out_port });

/// The complete route of one token through the network, ending at a counter:
/// a sequence of `BAL` steps followed by one `COUNT` step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Traversal {
    /// The input wire the token entered on.
    pub input: SourceId,
    /// The sink (counter) the token reached.
    pub sink: SinkId,
    /// The value the counter assigned.
    pub value: u64,
    /// The balancer steps, in order.
    pub path: Vec<BalancerStep>,
}

json_struct!(Traversal { input, sink, value, path });

/// Mutable state of a network: one round-robin pointer per balancer and one
/// counter per sink, plus history variables (token counts per input and
/// output wire).
///
/// # Example
///
/// ```
/// use cnet_topology::construct::bitonic;
/// use cnet_topology::state::NetworkState;
///
/// let net = bitonic(4)?;
/// let mut st = NetworkState::new(&net);
/// // Alternate tokens between inputs 0 and 2.
/// let values: Vec<u64> = (0..8).map(|k| st.traverse(&net, k % 2 * 2).value).collect();
/// let mut sorted = values.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..8).collect::<Vec<_>>()); // no gaps, no duplicates
/// assert!(st.output_counts_have_step_property());
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetworkState {
    /// Next output port for each balancer (the paper's state `s`, 0-based).
    balancer_state: Vec<usize>,
    /// Next value each sink's counter will hand out.
    counter_state: Vec<u64>,
    /// Tokens entered per input wire (history variable `x_i`).
    tokens_in: Vec<u64>,
    /// Tokens exited per output wire (history variable `y_j`).
    tokens_out: Vec<u64>,
}

json_struct!(NetworkState {
    balancer_state,
    counter_state,
    tokens_in,
    tokens_out,
});

impl NetworkState {
    /// The initial network state: all balancers at state 0, counter `j`
    /// poised to hand out `j`.
    pub fn new(net: &Network) -> Self {
        NetworkState {
            balancer_state: vec![0; net.size()],
            counter_state: (0..net.fan_out() as u64).collect(),
            tokens_in: vec![0; net.fan_in()],
            tokens_out: vec![0; net.fan_out()],
        }
    }

    /// Advances `balancer` by one token: returns the output port the token
    /// leaves on and rotates the balancer's round-robin state.
    pub fn balancer_step(&mut self, net: &Network, balancer: BalancerId) -> usize {
        let f_out = net.balancer(balancer).fan_out();
        let s = &mut self.balancer_state[balancer.index()];
        let port = *s;
        *s = (*s + 1) % f_out;
        port
    }

    /// Peeks at the output port the next token through `balancer` will take,
    /// without advancing the state.
    pub fn balancer_peek(&self, balancer: BalancerId) -> usize {
        self.balancer_state[balancer.index()]
    }

    /// Performs a `COUNT` step at `sink`: returns the assigned value and
    /// advances the counter by the network fan-out.
    pub fn counter_step(&mut self, net: &Network, sink: SinkId) -> u64 {
        let v = self.counter_state[sink.index()];
        self.counter_state[sink.index()] += net.fan_out() as u64;
        self.tokens_out[sink.index()] += 1;
        v
    }

    /// Shepherds one token instantaneously from input wire `input` to a
    /// counter, applying every `BAL` step and the final `COUNT` step.
    ///
    /// # Panics
    ///
    /// Panics if `input >= net.fan_in()`.
    pub fn traverse(&mut self, net: &Network, input: usize) -> Traversal {
        assert!(input < net.fan_in(), "input wire {input} out of range");
        let source = SourceId(input);
        self.tokens_in[input] += 1;
        let mut wire: WireId = net.source_wire(source);
        let mut path = Vec::new();
        loop {
            match net.wire(wire).end {
                WireEnd::Sink(sink) => {
                    let value = self.counter_step(net, sink);
                    return Traversal { input: source, sink, value, path };
                }
                WireEnd::Balancer { balancer, port: in_port } => {
                    let out_port = self.balancer_step(net, balancer);
                    path.push(BalancerStep { balancer, in_port, out_port });
                    wire = net.balancer(balancer).output(out_port);
                }
            }
        }
    }

    /// Pushes `counts[i]` tokens through each input wire `i`, interleaving
    /// round-robin over the inputs, and returns the traversals in order.
    pub fn push_tokens(&mut self, net: &Network, counts: &[u64]) -> Vec<Traversal> {
        assert_eq!(counts.len(), net.fan_in(), "one count per input wire");
        let mut remaining: Vec<u64> = counts.to_vec();
        let mut out = Vec::new();
        loop {
            let pending: Vec<usize> = remaining
                .iter()
                .enumerate()
                .filter(|&(_, &r)| r > 0)
                .map(|(i, _)| i)
                .collect();
            if pending.is_empty() {
                return out;
            }
            for i in pending {
                remaining[i] -= 1;
                out.push(self.traverse(net, i));
            }
        }
    }

    /// The number of tokens that have exited on each output wire (the
    /// history variables `y_0, …, y_{w_out-1}`).
    pub fn output_counts(&self) -> &[u64] {
        &self.tokens_out
    }

    /// The number of tokens that have entered on each input wire (the
    /// history variables `x_0, …, x_{w_in-1}`).
    pub fn input_counts(&self) -> &[u64] {
        &self.tokens_in
    }

    /// Checks the network-level **step property** on the current (quiescent)
    /// output counts: for every `j < k`, `0 <= y_j − y_k <= 1`.
    ///
    /// Meaningful only in a quiescent state; `NetworkState` is always
    /// quiescent because every `traverse` completes instantly.
    pub fn output_counts_have_step_property(&self) -> bool {
        has_step_property(&self.tokens_out)
    }

    /// Total tokens that have passed through the network.
    pub fn total_tokens(&self) -> u64 {
        self.tokens_out.iter().sum()
    }
}

/// Checks the step property on an arbitrary count vector: for every pair
/// `j < k`, `0 <= counts[j] − counts[k] <= 1`.
///
/// # Example
///
/// ```
/// use cnet_topology::state::has_step_property;
///
/// assert!(has_step_property(&[3, 3, 2, 2]));
/// assert!(!has_step_property(&[3, 1, 3, 2])); // gap of 2, and rising
/// ```
pub fn has_step_property(counts: &[u64]) -> bool {
    counts.windows(2).all(|w| w[0] >= w[1]) && counts.first().zip(counts.last()).is_none_or(|(f, l)| f - l <= 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LayeredBuilder;
    use cnet_util::proptest::prelude::*;

    fn single_balancer(width: usize) -> Network {
        let mut lb = LayeredBuilder::new(width);
        lb.balancer(&(0..width).collect::<Vec<_>>());
        lb.finish().unwrap()
    }

    #[test]
    fn balancer_round_robins_top_to_bottom() {
        let net = single_balancer(3);
        let mut st = NetworkState::new(&net);
        let sinks: Vec<usize> =
            (0..7).map(|_| st.traverse(&net, 0).sink.index()).collect();
        assert_eq!(sinks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn counters_assign_congruent_values() {
        let net = single_balancer(4);
        let mut st = NetworkState::new(&net);
        for expect in 0..12u64 {
            let t = st.traverse(&net, 0);
            assert_eq!(t.value, expect);
            assert_eq!(t.value % 4, t.sink.index() as u64);
        }
    }

    #[test]
    fn history_variables_track_tokens() {
        let net = single_balancer(2);
        let mut st = NetworkState::new(&net);
        st.traverse(&net, 0);
        st.traverse(&net, 1);
        st.traverse(&net, 0);
        assert_eq!(st.input_counts(), &[2, 1]);
        assert_eq!(st.output_counts(), &[2, 1]);
        assert_eq!(st.total_tokens(), 3);
    }

    #[test]
    fn push_tokens_interleaves() {
        let net = single_balancer(2);
        let mut st = NetworkState::new(&net);
        let ts = st.push_tokens(&net, &[3, 1]);
        assert_eq!(ts.len(), 4);
        assert_eq!(st.input_counts(), &[3, 1]);
        assert!(st.output_counts_have_step_property());
    }

    #[test]
    fn traversal_records_path() {
        let net = single_balancer(2);
        let mut st = NetworkState::new(&net);
        let t = st.traverse(&net, 1);
        assert_eq!(t.path.len(), 1);
        assert_eq!(t.path[0].in_port, 1);
        assert_eq!(t.path[0].out_port, 0);
        assert_eq!(t.input, SourceId(1));
    }

    #[test]
    fn step_property_checker() {
        assert!(has_step_property(&[]));
        assert!(has_step_property(&[5]));
        assert!(has_step_property(&[2, 2, 2]));
        assert!(has_step_property(&[3, 2, 2, 2]));
        assert!(has_step_property(&[3, 3, 3, 2]));
        assert!(!has_step_property(&[2, 3]));
        assert!(!has_step_property(&[4, 2, 2]));
        assert!(!has_step_property(&[3, 2, 3]));
    }

    proptest! {
        /// A single balancer is itself a counting network: any token count on
        /// any inputs yields step-property outputs and values 0..n.
        #[test]
        fn single_balancer_counts(
            width in 1usize..6,
            pushes in prop::collection::vec(0u64..20, 1..6),
        ) {
            let net = single_balancer(width);
            let mut counts = vec![0u64; width];
            for (i, p) in pushes.iter().enumerate() {
                counts[i % width] += p;
            }
            let mut st = NetworkState::new(&net);
            let ts = st.push_tokens(&net, &counts);
            prop_assert!(st.output_counts_have_step_property());
            let mut values: Vec<u64> = ts.iter().map(|t| t.value).collect();
            values.sort_unstable();
            let expect: Vec<u64> = (0..counts.iter().sum::<u64>()).collect();
            prop_assert_eq!(values, expect);
        }
    }
}
