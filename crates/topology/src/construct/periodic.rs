//! The periodic counting network `P(w)` and block network `L(w)`
//! (Section 2.6.2 of the paper, after \[AHS94\]).

use super::require_power_of_two;
use crate::builder::LayeredBuilder;
use crate::error::BuildError;
use crate::network::Network;

/// Builds the periodic counting network `P(w)`: the cascade of `lg w` block
/// networks `L(w)`. Its depth is `lg² w`.
///
/// # Errors
///
/// Returns [`BuildError::UnsupportedWidth`] unless `w` is a power of two
/// (`w = 1` yields the trivial single-wire network).
///
/// # Example
///
/// ```
/// use cnet_topology::construct::periodic;
///
/// let p8 = periodic(8)?;
/// assert_eq!(p8.depth(), 9); // lg² 8
/// assert!(p8.is_uniform());
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
pub fn periodic(w: usize) -> Result<Network, BuildError> {
    require_power_of_two(w, 1)?;
    let mut lb = LayeredBuilder::new(w);
    let lines: Vec<usize> = (0..w).collect();
    let blocks = if w == 1 { 0 } else { w.trailing_zeros() as usize };
    for _ in 0..blocks {
        build_block(&mut lb, &lines);
    }
    lb.finish()
}

/// Builds the block network `L(w)` as a standalone network, using the
/// paper's *second* construction: a top-bottom column `TB(w)` (balancer `i`
/// across lines `i` and `w−1−i`) feeding `L(w/2)` on the top half and the
/// renamed extension `L̂(w/2)` on the bottom half. Depth `lg w`.
///
/// # Errors
///
/// Returns [`BuildError::UnsupportedWidth`] unless `w` is a power of two with
/// `w >= 2`.
pub fn block(w: usize) -> Result<Network, BuildError> {
    require_power_of_two(w, 2)?;
    let mut lb = LayeredBuilder::new(w);
    let lines: Vec<usize> = (0..w).collect();
    build_block(&mut lb, &lines);
    lb.finish()
}

/// Builds the block network `L(w)` using the paper's *first* construction:
/// two interleaved `L(w/2)` networks on the even and odd lines feeding the
/// odd-even column `OE(w)` (balancer `j` across lines `2j` and `2j+1`).
///
/// Isomorphic to [`block`] as a graph (Herlihy–Tirthapura); the isomorphism
/// is verified in `analysis::iso`.
///
/// # Errors
///
/// Returns [`BuildError::UnsupportedWidth`] unless `w` is a power of two with
/// `w >= 2`.
pub fn block_interleaved(w: usize) -> Result<Network, BuildError> {
    require_power_of_two(w, 2)?;
    let mut lb = LayeredBuilder::new(w);
    let lines: Vec<usize> = (0..w).collect();
    build_block_interleaved(&mut lb, &lines);
    lb.finish()
}

/// Recursively lays `L(w)` (second construction) onto the given lines.
///
/// # Panics
///
/// Panics if `lines.len()` is not a power of two.
pub fn build_block(lb: &mut LayeredBuilder, lines: &[usize]) {
    let w = lines.len();
    assert!(w.is_power_of_two(), "block width must be a power of two");
    if w == 1 {
        return;
    }
    // Top-bottom column TB(w).
    for i in 0..w / 2 {
        lb.balancer(&[lines[i], lines[w - 1 - i]]);
    }
    build_block(lb, &lines[..w / 2]);
    build_block(lb, &lines[w / 2..]);
}

/// Recursively lays `L(w)` (first, interleaved construction) onto the lines.
fn build_block_interleaved(lb: &mut LayeredBuilder, lines: &[usize]) {
    let w = lines.len();
    assert!(w.is_power_of_two(), "block width must be a power of two");
    if w == 1 {
        return;
    }
    let evens: Vec<usize> = lines.iter().copied().step_by(2).collect();
    let odds: Vec<usize> = lines.iter().copied().skip(1).step_by(2).collect();
    build_block_interleaved(lb, &evens);
    build_block_interleaved(lb, &odds);
    // Odd-even column OE(w): balancer j merges output j of each half.
    for j in 0..w / 2 {
        lb.balancer(&[lines[2 * j], lines[2 * j + 1]]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NetworkState;
    use cnet_util::proptest::prelude::*;

    fn lg(w: usize) -> usize {
        w.trailing_zeros() as usize
    }

    #[test]
    fn periodic_depth_formula() {
        for w in [2usize, 4, 8, 16] {
            let net = periodic(w).unwrap();
            assert_eq!(net.depth(), lg(w) * lg(w), "depth of P({w})");
            assert!(net.is_uniform());
        }
    }

    #[test]
    fn block_depth_is_lg_w() {
        for w in [2usize, 4, 8, 16, 32] {
            for net in [block(w).unwrap(), block_interleaved(w).unwrap()] {
                assert_eq!(net.depth(), lg(w));
                assert_eq!(net.size(), w / 2 * lg(w));
                assert!(net.is_uniform());
            }
        }
    }

    #[test]
    fn periodic_size() {
        for w in [2usize, 4, 8] {
            let net = periodic(w).unwrap();
            assert_eq!(net.size(), lg(w) * (w / 2 * lg(w)));
        }
    }

    #[test]
    fn non_power_of_two_is_rejected() {
        assert!(periodic(5).is_err());
        assert!(block(1).is_err());
        assert!(block_interleaved(6).is_err());
    }

    #[test]
    fn periodic_counts_exhaustive_small() {
        for w in [2usize, 4] {
            let net = periodic(w).unwrap();
            let mut vecs = vec![vec![]];
            for _ in 0..w {
                vecs = vecs
                    .into_iter()
                    .flat_map(|v: Vec<u64>| {
                        (0..4u64).map(move |x| {
                            let mut v2 = v.clone();
                            v2.push(x);
                            v2
                        })
                    })
                    .collect();
            }
            for counts in vecs {
                let mut st = NetworkState::new(&net);
                let ts = st.push_tokens(&net, &counts);
                assert!(
                    st.output_counts_have_step_property(),
                    "P({w}) violates step property on {counts:?}: {:?}",
                    st.output_counts()
                );
                let mut values: Vec<u64> = ts.iter().map(|t| t.value).collect();
                values.sort_unstable();
                let n: u64 = counts.iter().sum();
                assert_eq!(values, (0..n).collect::<Vec<_>>());
            }
        }
    }

    /// Regression seed once found by the property test below (shrunk to
    /// `lgw = 2, counts = [2, 6, 4, 6, …]`), kept as an explicit case so it
    /// runs on every suite invocation.
    #[test]
    fn periodic_counts_regression_lgw2_2_6_4_6() {
        let net = periodic(4).unwrap();
        let counts = [2u64, 6, 4, 6];
        let mut st = NetworkState::new(&net);
        st.push_tokens(&net, &counts);
        assert!(st.output_counts_have_step_property(), "{:?}", st.output_counts());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn periodic_counts_random(
            lgw in 1usize..4,
            counts in prop::collection::vec(0u64..10, 8),
        ) {
            let w = 1 << lgw;
            let net = periodic(w).unwrap();
            let counts: Vec<u64> = counts[..w].to_vec();
            let mut st = NetworkState::new(&net);
            st.push_tokens(&net, &counts);
            prop_assert!(st.output_counts_have_step_property());
        }

        /// Both block constructions hand out gap-free values (they are valid
        /// balancing networks draining every token), even though only the
        /// top-bottom form is pointwise the block function — the interleaved
        /// form equals it only up to the graph isomorphism of
        /// `analysis::iso` (wire labels differ).
        #[test]
        fn interleaved_block_is_a_valid_balancing_network(
            lgw in 1usize..5,
            counts in prop::collection::vec(0u64..8, 16),
        ) {
            let w = 1usize << lgw;
            let counts: Vec<u64> = counts[..w].to_vec();
            let net = block_interleaved(w).unwrap();
            let mut st = NetworkState::new(&net);
            let ts = st.push_tokens(&net, &counts);
            let n: u64 = counts.iter().sum();
            // No token is swallowed or duplicated.
            prop_assert_eq!(ts.len() as u64, n);
            prop_assert_eq!(st.total_tokens(), n);
        }
    }
}
