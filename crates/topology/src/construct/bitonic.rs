//! The bitonic counting network `B(w)` and merging network `M(w)`
//! (Section 2.6.1 of the paper, after \[AHS94\]).
//!
//! The merger follows \[AHS94\]'s even–odd recursion exactly: `Merger[2k]`
//! sends the even-position half of its first input sequence and the
//! odd-position half of its second to one `Merger[k]`, the complementary
//! positions to another, and joins the two recursive outputs pairwise with a
//! final column of balancers. (The paper's Section 2.6.1 presents the same
//! network "column-first"; the two views describe the same graph read from
//! opposite ends — the first *layer* of `M(w)` joins wire `i` with wire
//! `w−1−i`, and the final column joins adjacent output pairs.)

use super::require_power_of_two;
use crate::builder::LayeredBuilder;
use crate::error::BuildError;
use crate::network::Network;

/// Builds the bitonic counting network `B(w)` of fan `w`.
///
/// `B(2)` is a single (2,2)-balancer; `B(w)` is two parallel `B(w/2)`
/// networks feeding the merging network `M(w)`. The depth is
/// `lg w · (lg w + 1) / 2`.
///
/// # Errors
///
/// Returns [`BuildError::UnsupportedWidth`] unless `w` is a power of two
/// (`w = 1` yields the trivial single-wire network).
///
/// # Example
///
/// ```
/// use cnet_topology::construct::bitonic;
///
/// let b16 = bitonic(16)?;
/// assert_eq!(b16.depth(), 10); // 4 * 5 / 2
/// assert!(b16.is_uniform());
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
pub fn bitonic(w: usize) -> Result<Network, BuildError> {
    require_power_of_two(w, 1)?;
    let mut lb = LayeredBuilder::new(w);
    let lines: Vec<usize> = (0..w).collect();
    let out = build_bitonic(&mut lb, &lines);
    lb.permute(&out);
    lb.finish()
}

/// Builds the merging network `M(w)` as a standalone network of fan `w`.
///
/// `M(w)` merges two step sequences of width `w/2` (on its top and bottom
/// halves of input wires) into one step sequence of width `w`. Its depth is
/// `lg w`, and there is a path from every input wire to every output wire.
///
/// # Errors
///
/// Returns [`BuildError::UnsupportedWidth`] unless `w` is a power of two with
/// `w >= 2`.
pub fn merger(w: usize) -> Result<Network, BuildError> {
    require_power_of_two(w, 2)?;
    let mut lb = LayeredBuilder::new(w);
    let lines: Vec<usize> = (0..w).collect();
    let out = build_merger(&mut lb, &lines);
    lb.permute(&out);
    lb.finish()
}

/// Recursively lays `B(w)` onto the given lines of a [`LayeredBuilder`].
///
/// Returns the lines carrying outputs `0, 1, …` in order (the recursion uses
/// free wire crossings, so outputs need not land on `lines` in input order —
/// top-level callers typically follow with [`LayeredBuilder::permute`]).
///
/// # Panics
///
/// Panics if `lines.len()` is not a power of two (callers validate widths).
pub fn build_bitonic(lb: &mut LayeredBuilder, lines: &[usize]) -> Vec<usize> {
    let w = lines.len();
    assert!(w.is_power_of_two(), "bitonic width must be a power of two");
    if w == 1 {
        return lines.to_vec();
    }
    let top = build_bitonic(lb, &lines[..w / 2]);
    let bottom = build_bitonic(lb, &lines[w / 2..]);
    let merged: Vec<usize> = top.into_iter().chain(bottom).collect();
    build_merger(lb, &merged)
}

/// Recursively lays `M(w)` onto the given lines of a [`LayeredBuilder`],
/// where `lines[..w/2]` carry the first step sequence and `lines[w/2..]` the
/// second. Returns the lines carrying merged outputs `0, 1, …` in order.
///
/// # Panics
///
/// Panics if `lines.len()` is not a power of two `>= 2`.
pub fn build_merger(lb: &mut LayeredBuilder, lines: &[usize]) -> Vec<usize> {
    let w = lines.len();
    assert!(w.is_power_of_two() && w >= 2, "merger width must be a power of two >= 2");
    if w == 2 {
        lb.balancer(lines);
        return lines.to_vec();
    }
    let k = w / 2;
    let (x, y) = lines.split_at(k);
    // Merger A: even positions of x, odd positions of y.
    let a_lines: Vec<usize> = x
        .iter()
        .step_by(2)
        .chain(y.iter().skip(1).step_by(2))
        .copied()
        .collect();
    // Merger B: odd positions of x, even positions of y.
    let b_lines: Vec<usize> = x
        .iter()
        .skip(1)
        .step_by(2)
        .chain(y.iter().step_by(2))
        .copied()
        .collect();
    let a_out = build_merger(lb, &a_lines);
    let b_out = build_merger(lb, &b_lines);
    // Final column: balancer i joins the i-th outputs of A and B, producing
    // merged outputs 2i (top) and 2i+1 (bottom).
    let mut out = Vec::with_capacity(w);
    for i in 0..k {
        lb.balancer(&[a_out[i], b_out[i]]);
        out.push(a_out[i]);
        out.push(b_out[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NetworkState;
    use cnet_util::proptest::prelude::*;

    fn lg(w: usize) -> usize {
        w.trailing_zeros() as usize
    }

    #[test]
    fn bitonic_depth_formula() {
        for w in [2usize, 4, 8, 16, 32] {
            let net = bitonic(w).unwrap();
            let k = lg(w);
            assert_eq!(net.depth(), k * (k + 1) / 2, "depth of B({w})");
            assert!(net.is_uniform(), "B({w}) must be uniform");
        }
    }

    #[test]
    fn bitonic_size_formula() {
        // Each of the depth layers holds w/2 (2,2)-balancers.
        for w in [2usize, 4, 8, 16] {
            let net = bitonic(w).unwrap();
            assert_eq!(net.size(), w / 2 * net.depth());
            for (_, b) in net.balancers() {
                assert_eq!(b.fan_in(), 2);
                assert_eq!(b.fan_out(), 2);
            }
        }
    }

    #[test]
    fn merger_depth_is_lg_w() {
        for w in [2usize, 4, 8, 16, 32] {
            let net = merger(w).unwrap();
            assert_eq!(net.depth(), lg(w));
            assert!(net.is_uniform());
            assert_eq!(net.size(), w / 2 * lg(w));
        }
    }

    #[test]
    fn non_power_of_two_is_rejected() {
        assert!(bitonic(0).is_err());
        assert!(bitonic(3).is_err());
        assert!(bitonic(12).is_err());
        assert!(merger(1).is_err());
    }

    #[test]
    fn bitonic_4_structure_matches_figure_4() {
        // Figure 4 (left): B(4) has 6 balancers in 3 layers of 2.
        let net = bitonic(4).unwrap();
        assert_eq!(net.size(), 6);
        assert_eq!(net.depth(), 3);
        for l in 1..=3 {
            assert_eq!(net.layer(l).balancers().count(), 2, "layer {l}");
        }
        // Layer 1 balancers are fed directly by input wires.
        for b in net.layer(1).balancers() {
            for &w in net.balancer(b).inputs() {
                assert_eq!(net.wire_depth(w), 0);
            }
        }
    }

    #[test]
    fn bitonic_8_structure_matches_figure_4() {
        // Figure 4 (right): B(8) has 24 balancers in 6 layers of 4.
        let net = bitonic(8).unwrap();
        assert_eq!(net.size(), 24);
        assert_eq!(net.depth(), 6);
        for l in 1..=6 {
            assert_eq!(net.layer(l).balancers().count(), 4, "layer {l}");
        }
    }

    /// Exhaustively drain small bitonic networks and check the step property
    /// and gap-free values for many input distributions.
    #[test]
    fn bitonic_counts_exhaustive_small() {
        for w in [2usize, 4] {
            let net = bitonic(w).unwrap();
            let mut vecs = vec![vec![]];
            for _ in 0..w {
                vecs = vecs
                    .into_iter()
                    .flat_map(|v: Vec<u64>| {
                        (0..4u64).map(move |x| {
                            let mut v2 = v.clone();
                            v2.push(x);
                            v2
                        })
                    })
                    .collect();
            }
            for counts in vecs {
                let mut st = NetworkState::new(&net);
                let ts = st.push_tokens(&net, &counts);
                assert!(
                    st.output_counts_have_step_property(),
                    "B({w}) violates step property on input {counts:?}: {:?}",
                    st.output_counts()
                );
                let mut values: Vec<u64> = ts.iter().map(|t| t.value).collect();
                values.sort_unstable();
                let n: u64 = counts.iter().sum();
                assert_eq!(values, (0..n).collect::<Vec<_>>());
            }
        }
    }

    /// Regression seed once found by the property test below (shrunk to
    /// `lgw = 2, counts = [5, 0, 1, 8, 0, …]`), kept as an explicit case so
    /// it runs on every suite invocation.
    #[test]
    fn bitonic_counts_regression_lgw2_5_0_1_8() {
        let net = bitonic(4).unwrap();
        let counts = [5u64, 0, 1, 8];
        let mut st = NetworkState::new(&net);
        let ts = st.push_tokens(&net, &counts);
        assert!(st.output_counts_have_step_property(), "{:?}", st.output_counts());
        let mut values: Vec<u64> = ts.iter().map(|t| t.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..14).collect::<Vec<_>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn bitonic_counts_random(
            lgw in 1usize..5,
            counts in prop::collection::vec(0u64..12, 16),
        ) {
            let w = 1 << lgw;
            let net = bitonic(w).unwrap();
            let counts: Vec<u64> = counts[..w].to_vec();
            let mut st = NetworkState::new(&net);
            let ts = st.push_tokens(&net, &counts);
            prop_assert!(st.output_counts_have_step_property());
            let mut values: Vec<u64> = ts.iter().map(|t| t.value).collect();
            values.sort_unstable();
            let n: u64 = counts.iter().sum();
            prop_assert_eq!(values, (0..n).collect::<Vec<_>>());
        }

        /// M(w) merges two step sequences into one step sequence.
        #[test]
        fn merger_merges_step_inputs(
            lgw in 1usize..5,
            a_total in 0u64..40,
            b_total in 0u64..40,
        ) {
            let w = 1usize << lgw;
            let net = merger(w).unwrap();
            // Build step-shaped input counts for each half.
            let half = w / 2;
            let mut counts = vec![0u64; w];
            for i in 0..half {
                counts[i] = a_total / half as u64
                    + u64::from((a_total % half as u64) > i as u64);
                counts[half + i] = b_total / half as u64
                    + u64::from((b_total % half as u64) > i as u64);
            }
            let mut st = NetworkState::new(&net);
            st.push_tokens(&net, &counts);
            prop_assert!(
                st.output_counts_have_step_property(),
                "M({}) failed on {:?} -> {:?}", w, counts, st.output_counts()
            );
        }
    }
}
