//! Ready-made counting-network constructions (Section 2.6 of the paper).
//!
//! * [`bitonic`] — the bitonic counting network `B(w)` of Aspnes, Herlihy,
//!   and Shavit, with its [`merger`] `M(w)`.
//! * [`periodic`] — the periodic counting network `P(w)`, the cascade of
//!   `lg w` [`block`] networks `L(w)`; [`block_interleaved`] gives the
//!   paper's first, interleaved block construction.
//! * [`counting_tree`] — the counting (diffracting) tree of Shavit and
//!   Zemach.
//! * [`cascade`] and [`identity`] — composition helpers.
//!
//! All widths must be powers of two (as assumed throughout the paper).

mod bitonic;
mod extend;
mod periodic;
mod random;
mod tree;

pub use bitonic::{bitonic, build_bitonic, build_merger, merger};
pub use extend::append_adjacent_balancer;
pub use periodic::{block, block_interleaved, build_block, periodic};
pub use random::{random_counting_network, RandomNetworkConfig};
pub use tree::counting_tree;

use crate::builder::LayeredBuilder;
use crate::error::BuildError;
use crate::network::Network;

/// Checks that `w` is a power of two and at least `min`.
pub(crate) fn require_power_of_two(w: usize, min: usize) -> Result<(), BuildError> {
    if w >= min && w.is_power_of_two() {
        Ok(())
    } else {
        Err(BuildError::UnsupportedWidth {
            width: w,
            requirement: "fan must be a power of two (and at least the construction's base case)",
        })
    }
}

/// The identity network of fan `w`: `w` wires from sources straight to sinks,
/// no balancers. Useful as a recursion base and in tests.
///
/// # Errors
///
/// Returns [`BuildError::UnsupportedWidth`] if `w == 0`.
pub fn identity(w: usize) -> Result<Network, BuildError> {
    if w == 0 {
        return Err(BuildError::UnsupportedWidth {
            width: 0,
            requirement: "identity network needs at least one wire",
        });
    }
    LayeredBuilder::new(w).finish()
}

/// Sequentially composes networks of equal fan: the sinks of each stage feed
/// the sources of the next.
///
/// # Errors
///
/// Returns [`BuildError::UnsupportedWidth`] if `stages` is empty or the fans
/// disagree (all stages must have fan-in = fan-out = the common fan).
pub fn cascade(stages: &[&Network]) -> Result<Network, BuildError> {
    let first = stages.first().ok_or(BuildError::UnsupportedWidth {
        width: 0,
        requirement: "cascade needs at least one stage",
    })?;
    let w = first.fan_in();
    for s in stages {
        if s.fan_in() != w || s.fan_out() != w {
            return Err(BuildError::UnsupportedWidth {
                width: s.fan_in(),
                requirement: "all cascade stages must share the same fan",
            });
        }
    }
    let mut lb = LayeredBuilder::new(w);
    let lines: Vec<usize> = (0..w).collect();
    for s in stages {
        lb.embed(s, &lines);
    }
    lb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NetworkState;

    #[test]
    fn identity_has_no_balancers() {
        let net = identity(4).unwrap();
        assert_eq!(net.size(), 0);
        assert_eq!(net.depth(), 0);
        let mut st = NetworkState::new(&net);
        assert_eq!(st.traverse(&net, 2).sink.index(), 2);
    }

    #[test]
    fn identity_zero_is_rejected() {
        assert!(identity(0).is_err());
    }

    #[test]
    fn cascade_concatenates_depths() {
        let b4 = bitonic(4).unwrap();
        let both = cascade(&[&b4, &b4]).unwrap();
        assert_eq!(both.depth(), 2 * b4.depth());
        assert_eq!(both.size(), 2 * b4.size());
        assert!(both.is_uniform());
    }

    #[test]
    fn cascade_of_counting_networks_counts() {
        let b4 = bitonic(4).unwrap();
        let net = cascade(&[&b4, &b4]).unwrap();
        let mut st = NetworkState::new(&net);
        st.push_tokens(&net, &[5, 0, 3, 1]);
        assert!(st.output_counts_have_step_property());
    }

    #[test]
    fn cascade_rejects_mismatched_fans() {
        let b4 = bitonic(4).unwrap();
        let b8 = bitonic(8).unwrap();
        assert!(cascade(&[&b4, &b8]).is_err());
        assert!(cascade(&[]).is_err());
    }

    #[test]
    fn power_of_two_guard() {
        assert!(require_power_of_two(8, 2).is_ok());
        assert!(require_power_of_two(1, 1).is_ok());
        assert!(require_power_of_two(6, 2).is_err());
        assert!(require_power_of_two(1, 2).is_err());
        assert!(require_power_of_two(0, 1).is_err());
    }
}
