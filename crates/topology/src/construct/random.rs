//! Randomized counting networks, for property-based testing.
//!
//! A counting network guarantees step-property outputs at quiescence for
//! *every* execution — in particular for every input distribution. So any
//! balancing network followed by a counting network is itself a counting
//! network: the suffix repairs whatever the prefix does. This gives a rich
//! generator of *novel* counting networks (random balancer columns and wire
//! crossings, then a classic core) on which every analysis and adversary in
//! the workspace can be exercised beyond the textbook constructions.

use super::{bitonic, periodic};
use crate::builder::LayeredBuilder;
use crate::error::BuildError;
use crate::network::Network;

/// Configuration for [`random_counting_network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomNetworkConfig {
    /// Fan of the network (power of two).
    pub fan: usize,
    /// Number of random prefix columns of (2,2)-balancers.
    pub prefix_columns: usize,
    /// Whether to insert a random wire crossing between prefix and core.
    pub crossing: bool,
    /// Whether the repairing core is the periodic network (else bitonic).
    pub periodic_core: bool,
}

/// A tiny deterministic generator (SplitMix64) so the topology crate does
/// not need a `rand` dependency for this test utility.
#[derive(Clone, Debug)]
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Builds a random counting network: `prefix_columns` random columns of
/// (2,2)-balancers over random disjoint line pairs, an optional random
/// permutation of the lines, then a bitonic or periodic core of the same
/// fan. Deterministic in `seed`.
///
/// # Errors
///
/// Returns [`BuildError::UnsupportedWidth`] unless the fan is a power of
/// two with `fan >= 2`.
///
/// # Example
///
/// ```
/// use cnet_topology::construct::{random_counting_network, RandomNetworkConfig};
/// use cnet_topology::state::NetworkState;
///
/// let cfg = RandomNetworkConfig { fan: 8, prefix_columns: 3, crossing: true, periodic_core: false };
/// let net = random_counting_network(&cfg, 42)?;
/// let mut st = NetworkState::new(&net);
/// st.push_tokens(&net, &[5, 0, 2, 7, 1, 0, 3, 2]);
/// assert!(st.output_counts_have_step_property());
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
pub fn random_counting_network(
    cfg: &RandomNetworkConfig,
    seed: u64,
) -> Result<Network, BuildError> {
    super::require_power_of_two(cfg.fan, 2)?;
    let w = cfg.fan;
    let mut rng = SplitMix(seed);
    let mut lb = LayeredBuilder::new(w);
    // Random prefix: each column pairs up a random subset of the lines.
    for _ in 0..cfg.prefix_columns {
        let mut lines: Vec<usize> = (0..w).collect();
        // Fisher–Yates shuffle.
        for i in (1..w).rev() {
            let j = rng.below(i + 1);
            lines.swap(i, j);
        }
        // Pair up a random number of disjoint pairs (at least one).
        let pairs = 1 + rng.below(w / 2);
        for p in 0..pairs {
            lb.balancer(&[lines[2 * p], lines[2 * p + 1]]);
        }
    }
    if cfg.crossing {
        let mut order: Vec<usize> = (0..w).collect();
        for i in (1..w).rev() {
            let j = rng.below(i + 1);
            order.swap(i, j);
        }
        lb.permute(&order);
    }
    // The repairing core.
    let core = if cfg.periodic_core { periodic(w)? } else { bitonic(w)? };
    let lines: Vec<usize> = (0..w).collect();
    lb.embed(&core, &lines);
    lb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NetworkState;
    use cnet_util::proptest::prelude::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = RandomNetworkConfig {
            fan: 8,
            prefix_columns: 2,
            crossing: true,
            periodic_core: false,
        };
        let a = random_counting_network(&cfg, 5).unwrap();
        let b = random_counting_network(&cfg, 5).unwrap();
        assert_eq!(a.size(), b.size());
        assert_eq!(a.depth(), b.depth());
        let c = random_counting_network(&cfg, 6).unwrap();
        // Different seeds usually give different sizes (pair counts vary).
        let _ = c;
    }

    #[test]
    fn rejects_non_power_of_two() {
        let cfg = RandomNetworkConfig {
            fan: 6,
            prefix_columns: 1,
            crossing: false,
            periodic_core: false,
        };
        assert!(random_counting_network(&cfg, 0).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        /// Whatever the random prefix does, the composite counts.
        #[test]
        fn random_networks_count(
            lgw in 1usize..4,
            prefix in 0usize..4,
            crossing in proptest::bool::ANY,
            periodic_core in proptest::bool::ANY,
            seed in 0u64..10_000,
            counts in prop::collection::vec(0u64..7, 8),
        ) {
            let w = 1usize << lgw;
            let cfg = RandomNetworkConfig { fan: w, prefix_columns: prefix, crossing, periodic_core };
            let net = random_counting_network(&cfg, seed).unwrap();
            let counts: Vec<u64> = counts[..w].to_vec();
            let mut st = NetworkState::new(&net);
            let ts = st.push_tokens(&net, &counts);
            prop_assert!(
                st.output_counts_have_step_property(),
                "seed {} cfg {:?}: {:?}", seed, cfg, st.output_counts()
            );
            let mut values: Vec<u64> = ts.iter().map(|t| t.value).collect();
            values.sort_unstable();
            let n: u64 = counts.iter().sum();
            prop_assert_eq!(values, (0..n).collect::<Vec<_>>());
        }

        /// Prefix-only columns may break uniformity; with no prefix and no
        /// crossing the composite is exactly the (uniform) core plus
        /// nothing, so it stays uniform.
        #[test]
        fn core_only_networks_are_uniform(
            lgw in 1usize..4,
            periodic_core in proptest::bool::ANY,
            seed in 0u64..100,
        ) {
            let w = 1usize << lgw;
            let cfg = RandomNetworkConfig {
                fan: w,
                prefix_columns: 0,
                crossing: false,
                periodic_core,
            };
            let net = random_counting_network(&cfg, seed).unwrap();
            prop_assert!(net.is_uniform());
        }
    }
}
