//! Extending counting networks — including into *non-uniform* ones.
//!
//! Table 1 of the paper has a row for **arbitrary** counting networks
//! (\[MPT97\]'s sufficient condition uses the shallowness `s(G) < d(G)`),
//! but all the classic constructions are uniform. [`append_adjacent_balancer`]
//! manufactures non-uniform counting networks to exercise that row: adding
//! a (2,2)-balancer across two *adjacent* output wires of a counting
//! network preserves the step property, and the untouched wires now form
//! shorter paths than the extended ones.

use crate::builder::LayeredBuilder;
use crate::error::BuildError;
use crate::network::Network;

/// Appends one (2,2)-balancer across output wires `j` and `j+1` of the
/// network, returning the extended network.
///
/// **Counting is preserved**: at quiescence the original outputs satisfy
/// the step property, so wires `j, j+1` carry counts `(a, b)` with
/// `a ∈ {b, b+1}`; the balancer maps `(a, a) ↦ (a, a)` and
/// `(b+1, b) ↦ (b+1, b)` — the identity on exactly the count shapes a
/// counting network can emit. The result is a counting network that is
/// **not uniform** (paths through the new balancer are one longer), with
/// `s(G') = d(G)` and `d(G') = d(G) + 1`.
///
/// # Errors
///
/// Returns [`BuildError::UnsupportedWidth`] if `j + 1 >= fan_out` or the
/// network's fan-in and fan-out differ (the layered embedding needs equal
/// fans).
///
/// # Example
///
/// ```
/// use cnet_topology::construct::{bitonic, append_adjacent_balancer};
///
/// let b8 = bitonic(8)?;
/// let extended = append_adjacent_balancer(&b8, 2)?;
/// assert!(!extended.is_uniform());
/// assert_eq!(extended.depth(), b8.depth() + 1);
/// assert_eq!(extended.shallowness(), b8.depth());
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
pub fn append_adjacent_balancer(net: &Network, j: usize) -> Result<Network, BuildError> {
    if net.fan_in() != net.fan_out() {
        return Err(BuildError::UnsupportedWidth {
            width: net.fan_in(),
            requirement: "extension needs fan-in = fan-out",
        });
    }
    let w = net.fan_out();
    if j + 1 >= w {
        return Err(BuildError::UnsupportedWidth {
            width: j,
            requirement: "adjacent pair (j, j+1) must fit within the fan-out",
        });
    }
    let mut lb = LayeredBuilder::new(w);
    let lines: Vec<usize> = (0..w).collect();
    lb.embed(net, &lines);
    lb.balancer(&[j, j + 1]);
    lb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{bitonic, counting_tree, periodic};
    use crate::state::NetworkState;
    use cnet_util::proptest::prelude::*;

    #[test]
    fn extension_is_non_uniform_counting_preserving() {
        let base = bitonic(4).unwrap();
        let ext = append_adjacent_balancer(&base, 1).unwrap();
        assert!(!ext.is_uniform());
        assert_eq!(ext.size(), base.size() + 1);
        assert_eq!(ext.depth(), base.depth() + 1);
        assert_eq!(ext.shallowness(), base.depth());
        // Exhaustive small-count check of the step property.
        for a in 0..4u64 {
            for b in 0..4u64 {
                for c in 0..4u64 {
                    let counts = vec![a, b, c, 1];
                    let mut st = NetworkState::new(&ext);
                    st.push_tokens(&ext, &counts);
                    assert!(
                        st.output_counts_have_step_property(),
                        "counts {counts:?} -> {:?}",
                        st.output_counts()
                    );
                }
            }
        }
    }

    #[test]
    fn extension_rejects_bad_pairs() {
        let base = bitonic(4).unwrap();
        assert!(append_adjacent_balancer(&base, 3).is_err());
        let tree = counting_tree(4).unwrap();
        assert!(append_adjacent_balancer(&tree, 0).is_err()); // fan-in 1 != 4
    }

    #[test]
    fn repeated_extension_stacks() {
        let base = bitonic(4).unwrap();
        let once = append_adjacent_balancer(&base, 0).unwrap();
        let twice = append_adjacent_balancer(&once, 2).unwrap();
        assert_eq!(twice.size(), base.size() + 2);
        // Both extensions sit at depth d+1, on disjoint pairs.
        assert_eq!(twice.depth(), base.depth() + 1);
        // One extension breaks uniformity; extending the remaining pair
        // completes a full extra column and restores it.
        assert!(!once.is_uniform());
        assert!(twice.is_uniform());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn extended_networks_still_count(
            lgw in 1usize..4,
            pair in 0usize..7,
            counts in prop::collection::vec(0u64..6, 8),
            periodic_base in proptest::bool::ANY,
        ) {
            let w = 1 << lgw;
            let base = if periodic_base { periodic(w).unwrap() } else { bitonic(w).unwrap() };
            let j = pair % (w - 1).max(1);
            let ext = append_adjacent_balancer(&base, j).unwrap();
            let counts: Vec<u64> = counts[..w].to_vec();
            let mut st = NetworkState::new(&ext);
            let ts = st.push_tokens(&ext, &counts);
            prop_assert!(st.output_counts_have_step_property());
            let mut values: Vec<u64> = ts.iter().map(|t| t.value).collect();
            values.sort_unstable();
            let n: u64 = counts.iter().sum();
            prop_assert_eq!(values, (0..n).collect::<Vec<_>>());
        }
    }
}
