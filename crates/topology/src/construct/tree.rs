//! The counting tree (diffracting tree) of Shavit and Zemach
//! (Section 2.6.3 of the paper, after \[SZ96\]).

use super::require_power_of_two;
use crate::builder::NetworkBuilder;
use crate::error::BuildError;
use crate::ids::{SinkId, SourceId};
use crate::network::{Network, WireEnd, WireStart};

/// Builds the counting tree of fan-out `w`: a balanced binary tree of depth
/// `lg w` made up of fan-out-2 balancers, with a single input wire at the
/// root and `w` counters at the leaves.
///
/// The paper writes "(w, 1)-counting tree … made up of (2, 1)-balancers";
/// following \[SZ96\] and \[LSST99\], tokens *enter* at the single root wire and
/// *spread* toward the `w` leaf counters, so the balancers here have fan-in 1
/// and fan-out 2, and the network has fan-in 1 and fan-out `w`.
///
/// Leaves are arranged so the tree satisfies the step property: the leaf
/// reached by taking ports `p₁, p₂, …` from the root is sink
/// `p₁ + 2·p₂ + 4·p₃ + …`, so the `n`-th token overall lands on sink
/// `n mod w`.
///
/// # Errors
///
/// Returns [`BuildError::UnsupportedWidth`] unless `w` is a power of two
/// (`w = 1` yields the trivial wire).
///
/// # Example
///
/// ```
/// use cnet_topology::construct::counting_tree;
///
/// let t8 = counting_tree(8)?;
/// assert_eq!(t8.fan_in(), 1);
/// assert_eq!(t8.fan_out(), 8);
/// assert_eq!(t8.depth(), 3);
/// assert_eq!(t8.size(), 7); // 2^lg w − 1 inner balancers
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
pub fn counting_tree(w: usize) -> Result<Network, BuildError> {
    require_power_of_two(w, 1)?;
    let mut nb = NetworkBuilder::new(1, w);
    let sinks: Vec<usize> = (0..w).collect();
    build_subtree(&mut nb, WireStart::Source(SourceId(0)), &sinks)?;
    nb.finish()
}

/// Recursively builds the subtree fed by `start`, distributing tokens to the
/// given sinks. Port 0 serves the even-indexed sinks (in the *current* index
/// list), port 1 the odd-indexed ones, giving the step-property leaf order.
fn build_subtree(
    nb: &mut NetworkBuilder,
    start: WireStart,
    sinks: &[usize],
) -> Result<(), BuildError> {
    debug_assert!(sinks.len().is_power_of_two());
    if sinks.len() == 1 {
        nb.connect(start, WireEnd::Sink(SinkId(sinks[0])))?;
        return Ok(());
    }
    let b = nb.add_balancer(1, 2);
    nb.connect(start, WireEnd::Balancer { balancer: b, port: 0 })?;
    let evens: Vec<usize> = sinks.iter().copied().step_by(2).collect();
    let odds: Vec<usize> = sinks.iter().copied().skip(1).step_by(2).collect();
    build_subtree(nb, WireStart::Balancer { balancer: b, port: 0 }, &evens)?;
    build_subtree(nb, WireStart::Balancer { balancer: b, port: 1 }, &odds)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NetworkState;

    #[test]
    fn tree_structure() {
        for lgw in 0usize..6 {
            let w = 1 << lgw;
            let t = counting_tree(w).unwrap();
            assert_eq!(t.fan_in(), 1);
            assert_eq!(t.fan_out(), w);
            assert_eq!(t.depth(), lgw);
            assert_eq!(t.size(), w - 1);
            assert!(t.is_uniform(), "counting tree of fan {w} is uniform");
        }
    }

    #[test]
    fn tokens_round_robin_over_leaves() {
        let w = 8;
        let t = counting_tree(w).unwrap();
        let mut st = NetworkState::new(&t);
        for n in 0..3 * w as u64 {
            let tr = st.traverse(&t, 0);
            assert_eq!(tr.sink.index() as u64, n % w as u64, "token {n}");
            assert_eq!(tr.value, n, "token {n} gets the global count");
        }
        assert!(st.output_counts_have_step_property());
    }

    #[test]
    fn tree_satisfies_step_property_at_any_prefix() {
        let t = counting_tree(16).unwrap();
        let mut st = NetworkState::new(&t);
        for _ in 0..37 {
            st.traverse(&t, 0);
            assert!(st.output_counts_have_step_property());
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(counting_tree(0).is_err());
        assert!(counting_tree(3).is_err());
        assert!(counting_tree(10).is_err());
    }

    #[test]
    fn tree_balancers_have_fan_out_two() {
        let t = counting_tree(8).unwrap();
        for (_, b) in t.balancers() {
            assert_eq!(b.fan_in(), 1);
            assert_eq!(b.fan_out(), 2);
            assert!(!b.is_regular());
        }
    }
}
