//! The balancing network: an acyclic graph of balancers, sources, and sinks.

use crate::balancer::Balancer;
use crate::ids::{BalancerId, SinkId, SourceId, WireId};
use cnet_util::json::{self, FromJson, JsonError, ToJson, Value};
use cnet_util::json_struct;
use std::fmt;

/// Where a wire begins: at a source node or at a balancer output port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WireStart {
    /// The wire is the network's input wire `source`.
    Source(SourceId),
    /// The wire leaves `balancer` from output port `port`.
    Balancer {
        /// The balancer the wire leaves.
        balancer: BalancerId,
        /// The output port (0 = top).
        port: usize,
    },
}

// Externally tagged, like serde: {"Source": 0} / {"Balancer": {...}}.
impl ToJson for WireStart {
    fn to_json(&self) -> Value {
        match self {
            WireStart::Source(s) => {
                Value::Object(vec![("Source".to_string(), s.to_json())])
            }
            WireStart::Balancer { balancer, port } => Value::Object(vec![(
                "Balancer".to_string(),
                Value::Object(vec![
                    ("balancer".to_string(), balancer.to_json()),
                    ("port".to_string(), port.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for WireStart {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        if let Some(s) = v.get("Source") {
            Ok(WireStart::Source(FromJson::from_json(s)?))
        } else if let Some(b) = v.get("Balancer") {
            Ok(WireStart::Balancer {
                balancer: json::field(b, "balancer")?,
                port: json::field(b, "port")?,
            })
        } else {
            Err(JsonError::new(format!("invalid WireStart: {v:?}")))
        }
    }
}

/// Where a wire ends: at a sink node (counter) or at a balancer input port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WireEnd {
    /// The wire is the network's output wire `sink`, feeding its counter.
    Sink(SinkId),
    /// The wire enters `balancer` on input port `port`.
    Balancer {
        /// The balancer the wire enters.
        balancer: BalancerId,
        /// The input port (0 = top).
        port: usize,
    },
}

impl ToJson for WireEnd {
    fn to_json(&self) -> Value {
        match self {
            WireEnd::Sink(s) => Value::Object(vec![("Sink".to_string(), s.to_json())]),
            WireEnd::Balancer { balancer, port } => Value::Object(vec![(
                "Balancer".to_string(),
                Value::Object(vec![
                    ("balancer".to_string(), balancer.to_json()),
                    ("port".to_string(), port.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for WireEnd {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        if let Some(s) = v.get("Sink") {
            Ok(WireEnd::Sink(FromJson::from_json(s)?))
        } else if let Some(b) = v.get("Balancer") {
            Ok(WireEnd::Balancer {
                balancer: json::field(b, "balancer")?,
                port: json::field(b, "port")?,
            })
        } else {
            Err(JsonError::new(format!("invalid WireEnd: {v:?}")))
        }
    }
}

/// A wire (edge) of the network, acting as an interconnection and delay
/// element with no queueing or ordering of pending tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Wire {
    /// Where the wire begins.
    pub start: WireStart,
    /// Where the wire ends.
    pub end: WireEnd,
}

json_struct!(Wire { start, end });

/// A node reference as it appears in a [`Layer`]: either an inner balancer
/// node or a sink node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// An inner (balancer) node.
    Balancer(BalancerId),
    /// A sink node.
    Sink(SinkId),
}

impl ToJson for NodeRef {
    fn to_json(&self) -> Value {
        match self {
            NodeRef::Balancer(b) => {
                Value::Object(vec![("Balancer".to_string(), b.to_json())])
            }
            NodeRef::Sink(s) => Value::Object(vec![("Sink".to_string(), s.to_json())]),
        }
    }
}

impl FromJson for NodeRef {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        if let Some(b) = v.get("Balancer") {
            Ok(NodeRef::Balancer(FromJson::from_json(b)?))
        } else if let Some(s) = v.get("Sink") {
            Ok(NodeRef::Sink(FromJson::from_json(s)?))
        } else {
            Err(JsonError::new(format!("invalid NodeRef: {v:?}")))
        }
    }
}

/// A layer of the network: the maximal set of nodes sharing the same depth
/// (Section 2.5). Layer indices are 1-based, matching the paper: balancer
/// layers run `1..=depth`, and in a uniform network all sinks sit in layer
/// `depth + 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layer {
    /// The 1-based layer index ℓ.
    pub index: usize,
    /// The nodes at depth ℓ.
    pub nodes: Vec<NodeRef>,
}

json_struct!(Layer { index, nodes });

impl Layer {
    /// Iterates over the balancers in this layer (skipping sinks).
    pub fn balancers(&self) -> impl Iterator<Item = BalancerId> + '_ {
        self.nodes.iter().filter_map(|n| match n {
            NodeRef::Balancer(b) => Some(*b),
            NodeRef::Sink(_) => None,
        })
    }
}

/// A `(w_in, w_out)`-balancing network (Section 2.1): a finite acyclic graph
/// of balancers, with `w_in` source nodes and `w_out` sink nodes, every
/// endpoint connected by exactly one wire.
///
/// Construct networks through [`crate::NetworkBuilder`],
/// [`crate::LayeredBuilder`], or the ready-made constructions in
/// [`crate::construct`]. A `Network` is immutable once built; all derived
/// structure (depths, layers, uniformity, shallowness) is precomputed.
///
/// # Example
///
/// ```
/// use cnet_topology::construct::bitonic;
///
/// let b8 = bitonic(8)?;
/// assert_eq!(b8.fan_in(), 8);
/// assert_eq!(b8.fan_out(), 8);
/// assert_eq!(b8.depth(), 6);
/// assert!(b8.is_uniform());
/// assert_eq!(b8.size(), 24); // 24 (2,2)-balancers in B(8)
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
#[derive(Clone)]
pub struct Network {
    fan_in: usize,
    fan_out: usize,
    balancers: Vec<Balancer>,
    wires: Vec<Wire>,
    /// `source_wires[i]` is the wire leaving source `i`.
    source_wires: Vec<WireId>,
    /// `sink_wires[j]` is the wire entering sink `j`.
    sink_wires: Vec<WireId>,
    /// Longest-path depth of every wire (paper's `d(z)`).
    wire_depth: Vec<usize>,
    /// Shortest-path depth of every wire (for shallowness / uniformity).
    wire_min_depth: Vec<usize>,
    /// `d(B)` for every balancer.
    balancer_depth: Vec<usize>,
    depth: usize,
    shallowness: usize,
    uniform: bool,
    layers: Vec<Layer>,
}

json_struct!(Network {
    fan_in,
    fan_out,
    balancers,
    wires,
    source_wires,
    sink_wires,
    wire_depth,
    wire_min_depth,
    balancer_depth,
    depth,
    shallowness,
    uniform,
    layers,
});

impl Network {
    /// Assembles a validated network. Called only by the builder, which has
    /// already checked connectivity and acyclicity; this constructor computes
    /// the derived structure.
    pub(crate) fn assemble(
        fan_in: usize,
        fan_out: usize,
        balancers: Vec<Balancer>,
        wires: Vec<Wire>,
        source_wires: Vec<WireId>,
        sink_wires: Vec<WireId>,
        topo_order: &[BalancerId],
    ) -> Self {
        let mut wire_depth = vec![0usize; wires.len()];
        let mut wire_min_depth = vec![0usize; wires.len()];
        let mut balancer_depth = vec![0usize; balancers.len()];

        // Wires from sources have depth 0; balancers in topological order.
        for &b in topo_order {
            let bal = &balancers[b.index()];
            let in_max = bal
                .inputs()
                .iter()
                .map(|w| wire_depth[w.index()])
                .max()
                .expect("fan-in >= 1");
            let in_min = bal
                .inputs()
                .iter()
                .map(|w| wire_min_depth[w.index()])
                .min()
                .expect("fan-in >= 1");
            for &w in bal.outputs() {
                wire_depth[w.index()] = in_max + 1;
                wire_min_depth[w.index()] = in_min + 1;
            }
            balancer_depth[b.index()] = in_max + 1;
        }

        let depth = balancer_depth.iter().copied().max().unwrap_or(0);
        let shallowness = sink_wires
            .iter()
            .map(|w| wire_min_depth[w.index()])
            .min()
            .unwrap_or(0);

        // Uniform: every source→sink path has the same length. Equivalent to
        // all wires having equal longest- and shortest-path depth and every
        // sink wire sitting at full depth.
        let uniform = wire_depth == wire_min_depth
            && sink_wires.iter().all(|w| wire_depth[w.index()] == depth);

        // Layers 1..=depth+1 (1-based). Sinks sit one past their feeding wire.
        let mut layers: Vec<Layer> = (1..=depth + 1)
            .map(|index| Layer { index, nodes: Vec::new() })
            .collect();
        for (i, &d) in balancer_depth.iter().enumerate() {
            layers[d - 1].nodes.push(NodeRef::Balancer(BalancerId(i)));
        }
        for (j, &w) in sink_wires.iter().enumerate() {
            let d = wire_depth[w.index()] + 1;
            layers[d - 1].nodes.push(NodeRef::Sink(SinkId(j)));
        }

        Network {
            fan_in,
            fan_out,
            balancers,
            wires,
            source_wires,
            sink_wires,
            wire_depth,
            wire_min_depth,
            balancer_depth,
            depth,
            shallowness,
            uniform,
            layers,
        }
    }

    /// The network's fan-in `w_in` (number of input wires).
    #[inline]
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// The network's fan-out `w_out` (number of output wires / counters).
    #[inline]
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }

    /// The common fan `w`, if fan-in equals fan-out.
    pub fn fan(&self) -> Option<usize> {
        (self.fan_in == self.fan_out).then_some(self.fan_in)
    }

    /// The *size* of the network: its number of inner (balancer) nodes.
    #[inline]
    pub fn size(&self) -> usize {
        self.balancers.len()
    }

    /// The depth `d(G)`: the maximum balancer depth.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The *shallowness* `s(G)`: the length of the shortest path from an
    /// input wire to an output wire. Always `s(G) <= d(G)`, with equality
    /// exactly when the network is uniform.
    #[inline]
    pub fn shallowness(&self) -> usize {
        self.shallowness
    }

    /// Returns `true` if the network is *uniform*: every node lies on a
    /// source→sink path and all such paths have the same length
    /// ([LSST99, Definition 2.1]).
    #[inline]
    pub fn is_uniform(&self) -> bool {
        self.uniform
    }

    /// Returns `true` if every balancer is regular (fan-in = fan-out).
    pub fn is_regular(&self) -> bool {
        self.balancers.iter().all(Balancer::is_regular)
    }

    /// The balancer with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn balancer(&self, id: BalancerId) -> &Balancer {
        &self.balancers[id.index()]
    }

    /// Iterates over `(id, balancer)` pairs.
    pub fn balancers(&self) -> impl Iterator<Item = (BalancerId, &Balancer)> {
        self.balancers.iter().enumerate().map(|(i, b)| (BalancerId(i), b))
    }

    /// The wire with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn wire(&self, id: WireId) -> Wire {
        self.wires[id.index()]
    }

    /// Iterates over `(id, wire)` pairs.
    pub fn wires(&self) -> impl Iterator<Item = (WireId, Wire)> + '_ {
        self.wires.iter().enumerate().map(|(i, w)| (WireId(i), *w))
    }

    /// The number of wires.
    #[inline]
    pub fn num_wires(&self) -> usize {
        self.wires.len()
    }

    /// The wire leaving source `i` (the network's `i`-th input wire).
    ///
    /// # Panics
    ///
    /// Panics if `i >= fan_in()`.
    #[inline]
    pub fn source_wire(&self, i: SourceId) -> WireId {
        self.source_wires[i.index()]
    }

    /// The wire entering sink `j` (the network's `j`-th output wire).
    ///
    /// # Panics
    ///
    /// Panics if `j >= fan_out()`.
    #[inline]
    pub fn sink_wire(&self, j: SinkId) -> WireId {
        self.sink_wires[j.index()]
    }

    /// The depth `d(z)` of a wire: 0 for input wires, otherwise the length of
    /// the longest path from a source node to the wire.
    #[inline]
    pub fn wire_depth(&self, id: WireId) -> usize {
        self.wire_depth[id.index()]
    }

    /// The length of the *shortest* path from a source node to the wire.
    #[inline]
    pub fn wire_min_depth(&self, id: WireId) -> usize {
        self.wire_min_depth[id.index()]
    }

    /// The depth `d(B)` of a balancer: the maximum depth over its output
    /// wires.
    #[inline]
    pub fn balancer_depth(&self, id: BalancerId) -> usize {
        self.balancer_depth[id.index()]
    }

    /// All layers, in order; `layers()[l-1]` is layer `l` (1-based, as in the
    /// paper). There are `depth() + 1` layers; in a uniform network layer
    /// `depth() + 1` holds exactly the sinks.
    #[inline]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Layer `l` (1-based).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= l <= depth() + 1`.
    #[inline]
    pub fn layer(&self, l: usize) -> &Layer {
        assert!(
            (1..=self.depth + 1).contains(&l),
            "layer {l} out of range 1..={}",
            self.depth + 1
        );
        &self.layers[l - 1]
    }

    /// Balancers in topological order (every balancer after all balancers
    /// feeding it). Derived from depths, which the builder computed from a
    /// true topological order.
    pub fn topo_order(&self) -> Vec<BalancerId> {
        let mut order: Vec<BalancerId> =
            (0..self.balancers.len()).map(BalancerId).collect();
        order.sort_by_key(|b| self.balancer_depth[b.index()]);
        order
    }

    /// Follows wires forward from `wire` choosing output port `port_choice`
    /// at every balancer, returning the sink eventually reached. Used by
    /// tests and by path-construction helpers.
    pub fn walk_to_sink(&self, mut wire: WireId, mut port_choice: impl FnMut(BalancerId) -> usize) -> SinkId {
        loop {
            match self.wire(wire).end {
                WireEnd::Sink(s) => return s,
                WireEnd::Balancer { balancer, .. } => {
                    let port = port_choice(balancer);
                    wire = self.balancer(balancer).output(port);
                }
            }
        }
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("fan_in", &self.fan_in)
            .field("fan_out", &self.fan_out)
            .field("size", &self.balancers.len())
            .field("depth", &self.depth)
            .field("uniform", &self.uniform)
            .finish()
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {})-balancing network, size {}, depth {}{}",
            self.fan_in,
            self.fan_out,
            self.size(),
            self.depth,
            if self.uniform { ", uniform" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LayeredBuilder;

    /// Two (2,2)-balancers in series on two lines.
    fn two_column() -> Network {
        let mut b = LayeredBuilder::new(2);
        b.balancer(&[0, 1]);
        b.balancer(&[0, 1]);
        b.finish().unwrap()
    }

    #[test]
    fn depths_and_layers_of_series_network() {
        let net = two_column();
        assert_eq!(net.depth(), 2);
        assert_eq!(net.size(), 2);
        assert_eq!(net.shallowness(), 2);
        assert!(net.is_uniform());
        assert!(net.is_regular());
        assert_eq!(net.layers().len(), 3);
        assert_eq!(net.layer(1).balancers().count(), 1);
        assert_eq!(net.layer(2).balancers().count(), 1);
        // layer 3 holds the two sinks
        assert_eq!(net.layer(3).balancers().count(), 0);
        assert_eq!(net.layer(3).nodes.len(), 2);
    }

    #[test]
    fn fan_of_symmetric_network() {
        let net = two_column();
        assert_eq!(net.fan(), Some(2));
        assert_eq!(net.fan_in(), 2);
        assert_eq!(net.fan_out(), 2);
    }

    #[test]
    fn source_and_sink_wires_have_extreme_depths() {
        let net = two_column();
        for i in 0..2 {
            assert_eq!(net.wire_depth(net.source_wire(SourceId(i))), 0);
        }
        for j in 0..2 {
            assert_eq!(net.wire_depth(net.sink_wire(SinkId(j))), 2);
        }
    }

    #[test]
    fn non_uniform_network_detected() {
        // Three lines; a balancer on lines 0,1 only. Line 2 runs straight
        // from source to sink, so paths have lengths 1 and 0.
        let mut b = LayeredBuilder::new(3);
        b.balancer(&[0, 1]);
        let net = b.finish().unwrap();
        assert!(!net.is_uniform());
        assert_eq!(net.depth(), 1);
        assert_eq!(net.shallowness(), 0);
    }

    #[test]
    fn walk_to_sink_follows_ports() {
        let net = two_column();
        // Always take the top port: source 0 -> b0 top -> b1 top -> sink 0.
        let s = net.walk_to_sink(net.source_wire(SourceId(0)), |_| 0);
        assert_eq!(s, SinkId(0));
        let s = net.walk_to_sink(net.source_wire(SourceId(0)), |_| 1);
        assert_eq!(s, SinkId(1));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let net = two_column();
        let order = net.topo_order();
        assert_eq!(order.len(), 2);
        assert!(net.balancer_depth(order[0]) <= net.balancer_depth(order[1]));
    }

    #[test]
    fn display_and_debug_are_informative() {
        let net = two_column();
        let d = format!("{net}");
        assert!(d.contains("(2, 2)-balancing network"));
        assert!(d.contains("uniform"));
        let dbg = format!("{net:?}");
        assert!(dbg.contains("depth"));
    }

    #[test]
    fn serde_round_trip_preserves_structure() {
        use crate::construct::{bitonic, counting_tree, periodic};
        use crate::state::NetworkState;
        for net in [two_column(), bitonic(8).unwrap(), periodic(4).unwrap(), counting_tree(8).unwrap()] {
            let json = json::to_string(&net);
            let back: Network = json::from_str(&json).expect("networks deserialize");
            assert_eq!(back.fan_in(), net.fan_in());
            assert_eq!(back.fan_out(), net.fan_out());
            assert_eq!(back.size(), net.size());
            assert_eq!(back.depth(), net.depth());
            assert_eq!(back.is_uniform(), net.is_uniform());
            // Behavioral equality: both route tokens identically.
            let mut a = NetworkState::new(&net);
            let mut b = NetworkState::new(&back);
            for k in 0..20 {
                let input = k % net.fan_in();
                assert_eq!(a.traverse(&net, input), b.traverse(&back, input));
            }
        }
    }
}
