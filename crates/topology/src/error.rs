//! Error types for network construction and analysis.

use std::error::Error;
use std::fmt;

/// Errors produced while assembling a network with [`crate::NetworkBuilder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A balancer was declared with fan-in or fan-out of zero.
    ZeroFan {
        /// The offending balancer.
        balancer: usize,
    },
    /// A balancer input port, balancer output port, source, or sink was left
    /// unconnected when `finish` was called.
    Unconnected {
        /// Human-readable description of the dangling endpoint.
        endpoint: String,
    },
    /// Two wires were attached to the same endpoint.
    DoublyConnected {
        /// Human-readable description of the over-connected endpoint.
        endpoint: String,
    },
    /// The wires form a directed cycle, which the paper's model forbids.
    Cyclic,
    /// An endpoint index was out of range for the declared node.
    IndexOutOfRange {
        /// Human-readable description of the bad reference.
        endpoint: String,
    },
    /// A construction was asked for an unsupported width (e.g. the bitonic
    /// network requires the fan to be a power of two, at least 2).
    UnsupportedWidth {
        /// The requested width.
        width: usize,
        /// What the construction requires.
        requirement: &'static str,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroFan { balancer } => {
                write!(f, "balancer b{balancer} has zero fan-in or fan-out")
            }
            BuildError::Unconnected { endpoint } => {
                write!(f, "endpoint {endpoint} is not connected to any wire")
            }
            BuildError::DoublyConnected { endpoint } => {
                write!(f, "endpoint {endpoint} is connected to more than one wire")
            }
            BuildError::Cyclic => write!(f, "wires form a directed cycle"),
            BuildError::IndexOutOfRange { endpoint } => {
                write!(f, "endpoint {endpoint} is out of range")
            }
            BuildError::UnsupportedWidth { width, requirement } => {
                write!(f, "unsupported width {width}: {requirement}")
            }
        }
    }
}

impl Error for BuildError {}

/// Errors produced by structural analyses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// An analysis that requires a uniform network was applied to a
    /// non-uniform one.
    NotUniform,
    /// An analysis that requires a totally-ordering layer found none (the
    /// network has no split layer).
    NoSplitLayer,
    /// The network does not satisfy a structural precondition of the analysis.
    Precondition {
        /// Which precondition failed.
        what: &'static str,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NotUniform => write!(f, "network is not uniform"),
            TopologyError::NoSplitLayer => {
                write!(f, "network has no totally-ordering layer")
            }
            TopologyError::Precondition { what } => {
                write!(f, "structural precondition failed: {what}")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_error_messages_are_lowercase_and_specific() {
        let e = BuildError::UnsupportedWidth {
            width: 3,
            requirement: "fan must be a power of two",
        };
        assert_eq!(e.to_string(), "unsupported width 3: fan must be a power of two");
        let e = BuildError::Cyclic;
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn topology_error_messages() {
        assert_eq!(TopologyError::NotUniform.to_string(), "network is not uniform");
        assert!(TopologyError::NoSplitLayer.to_string().contains("totally-ordering"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BuildError>();
        assert_send_sync::<TopologyError>();
    }
}
