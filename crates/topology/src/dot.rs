//! Graphviz DOT export, for rendering the paper's figures.
//!
//! The experiment binary `exp_figures` in `cnet-bench` uses this to emit the
//! networks of Figures 2, 4, 5, and 6 as `.dot` files.

use crate::network::{Network, WireEnd, WireStart};
use std::fmt::Write as _;

/// Renders the network as a Graphviz `digraph`, ranked left-to-right with
/// one rank per layer (mirroring the paper's horizontal-lines drawings).
///
/// # Example
///
/// ```
/// use cnet_topology::construct::bitonic;
/// use cnet_topology::dot::to_dot;
///
/// let dot = to_dot(&bitonic(4)?, "B4");
/// assert!(dot.starts_with("digraph B4 {"));
/// assert!(dot.contains("x0 -> "));
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
pub fn to_dot(net: &Network, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    // Sources.
    let _ = writeln!(out, "  {{ rank=source;");
    for i in 0..net.fan_in() {
        let _ = writeln!(out, "    x{i} [shape=plaintext, label=\"x{i}\"];");
    }
    let _ = writeln!(out, "  }}");
    // Balancers, one rank block per layer.
    for layer in net.layers() {
        let bals: Vec<_> = layer.balancers().collect();
        if bals.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  {{ rank=same;");
        for b in bals {
            let bal = net.balancer(b);
            let _ = writeln!(
                out,
                "    b{} [label=\"({},{})\"];",
                b.index(),
                bal.fan_in(),
                bal.fan_out()
            );
        }
        let _ = writeln!(out, "  }}");
    }
    // Sinks.
    let _ = writeln!(out, "  {{ rank=sink;");
    for j in 0..net.fan_out() {
        let _ = writeln!(out, "    y{j} [shape=plaintext, label=\"y{j}\"];");
    }
    let _ = writeln!(out, "  }}");
    // Wires.
    for (_, wire) in net.wires() {
        let from = match wire.start {
            WireStart::Source(s) => format!("x{}", s.index()),
            WireStart::Balancer { balancer, .. } => format!("b{}", balancer.index()),
        };
        let to = match wire.end {
            WireEnd::Sink(s) => format!("y{}", s.index()),
            WireEnd::Balancer { balancer, .. } => format!("b{}", balancer.index()),
        };
        let _ = writeln!(out, "  {from} -> {to};");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{bitonic, counting_tree};

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let net = bitonic(4).unwrap();
        let dot = to_dot(&net, "B4");
        for i in 0..4 {
            assert!(dot.contains(&format!("x{i} ")));
            assert!(dot.contains(&format!("y{i} ")));
        }
        for b in 0..net.size() {
            assert!(dot.contains(&format!("b{b} ")));
        }
        assert_eq!(dot.matches(" -> ").count(), net.num_wires());
    }

    #[test]
    fn dot_renders_irregular_balancers() {
        let net = counting_tree(4).unwrap();
        let dot = to_dot(&net, "T4");
        assert!(dot.contains("(1,2)"));
    }

    #[test]
    fn dot_is_parseable_shape() {
        let dot = to_dot(&bitonic(2).unwrap(), "B2");
        assert!(dot.starts_with("digraph B2 {"));
        assert!(dot.trim_end().ends_with('}'));
        // Braces balance.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
