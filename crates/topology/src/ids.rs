//! Strongly-typed indices for the entities of a balancing network.
//!
//! All ids are plain `usize` newtypes ([C-NEWTYPE]); they are only meaningful
//! relative to the [`crate::Network`] that produced them.

use cnet_util::json_newtype;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default,
        )]
        pub struct $name(pub usize);

        json_newtype!($name: usize);

        impl $name {
            /// Returns the underlying index.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                $name(i)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

id_type!(
    /// Index of a balancer (inner node) within a network.
    BalancerId,
    "b"
);
id_type!(
    /// Index of a wire (edge) within a network.
    WireId,
    "w"
);
id_type!(
    /// Index of a source node — the `i`-th input wire of the network.
    SourceId,
    "x"
);
id_type!(
    /// Index of a sink node — the `j`-th output wire / counter of the network.
    SinkId,
    "y"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_letters() {
        assert_eq!(BalancerId(3).to_string(), "b3");
        assert_eq!(WireId(0).to_string(), "w0");
        assert_eq!(SourceId(7).to_string(), "x7");
        assert_eq!(SinkId(2).to_string(), "y2");
    }

    #[test]
    fn round_trips_through_usize() {
        let b: BalancerId = 5usize.into();
        assert_eq!(usize::from(b), 5);
        assert_eq!(b.index(), 5);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(BalancerId(1) < BalancerId(2));
        assert_eq!(SinkId(4), SinkId(4));
    }
}
