//! Split depths, split networks, split sequences, and split numbers
//! (Section 5.3 of the paper).
//!
//! The *split depth* `sd(G)` is the first layer whose balancers are all
//! totally ordering: the point where a token's eventual "sink decision"
//! becomes confined to a contiguous, ordered band of counters. Chopping the
//! network at its split depth and keeping the bottom half yields the next
//! element of the *split sequence*; its length is the *split number*
//! `sp(G)`, which parameterizes the inconsistency-fraction lower bounds of
//! Theorem 5.11.

use crate::analysis::valency::Valencies;
use crate::builder::NetworkBuilder;
use crate::error::TopologyError;
use crate::ids::{BalancerId, SinkId};
use crate::network::{Network, WireEnd, WireStart};

/// Computes the split depth `sd(G)`: the least layer `ℓ` (1-based,
/// `1 ≤ ℓ ≤ d(G)`) such that layer `ℓ` is totally ordering.
///
/// # Errors
///
/// Returns [`TopologyError::NoSplitLayer`] if no balancer layer is totally
/// ordering (e.g. the network has no balancers at all).
pub fn split_depth(net: &Network, val: &Valencies) -> Result<usize, TopologyError> {
    for l in 1..=net.depth() {
        if val.layer_is_totally_ordering(net, net.layer(l)) {
            return Ok(l);
        }
    }
    Err(TopologyError::NoSplitLayer)
}

/// One element of a split sequence, with the properties Theorem 5.11 needs.
#[derive(Clone, Debug)]
pub struct SplitStage {
    /// The network `S⁽ℓ⁾(G)` itself.
    pub network: Network,
    /// Its split depth, if it has a totally-ordering layer.
    pub split_depth: Option<usize>,
    /// Whether its split layer is complete (every split-layer balancer
    /// reaches every sink). `true` vacuously for the final stage.
    pub complete: bool,
    /// Whether its split layer is uniformly splittable. `true` vacuously for
    /// the final stage.
    pub uniformly_splittable: bool,
}

/// The split sequence `S⁽⁰⁾(G), S⁽¹⁾(G), …` of a network (Section 5.3).
#[derive(Clone, Debug)]
pub struct SplitSequence {
    /// The stages, starting with `S⁽⁰⁾(G) = G`.
    pub stages: Vec<SplitStage>,
}

impl SplitSequence {
    /// The split number `sp(G)`: the length of the split sequence.
    pub fn split_number(&self) -> usize {
        self.stages.len()
    }

    /// `d(S⁽ℓ⁾(G))` for `0 ≤ ℓ < sp(G)` — the depths entering Theorem 5.11's
    /// timing thresholds. By the chopping construction, for `1 ≤ ℓ ≤ sp(G)`
    /// this equals the depth remaining *below* the ℓ-th split layer; index
    /// `sp(G)` is also accepted and reported as the depth of the final stage.
    ///
    /// # Panics
    ///
    /// Panics if `l > sp(G)`.
    pub fn stage_depth(&self, l: usize) -> usize {
        if l < self.stages.len() {
            self.stages[l].network.depth()
        } else if l == self.stages.len() {
            // d(S^(sp)) would be the network after the final chop; the final
            // stage has sd == d, so the (hypothetical) next chop leaves
            // depth d − sd = 0 … except the paper evaluates
            // d(S^(sp(G))) = 1 for B(w)/P(w), meaning the *last* stage.
            self.stages[l - 1].network.depth()
        } else {
            panic!("stage {l} out of range 0..={}", self.stages.len());
        }
    }

    /// Whether `G` is **continuously complete**: every stage but the last is
    /// complete.
    pub fn is_continuously_complete(&self) -> bool {
        self.stages
            .iter()
            .take(self.stages.len().saturating_sub(1))
            .all(|s| s.complete)
    }

    /// Whether `G` is **continuously uniformly splittable**: every stage but
    /// the last is uniformly splittable.
    pub fn is_continuously_uniformly_splittable(&self) -> bool {
        self.stages
            .iter()
            .take(self.stages.len().saturating_sub(1))
            .all(|s| s.uniformly_splittable)
    }
}

/// Computes the split sequence of a network made up of fan-out-2 balancers
/// at its split layers (the setting of Section 5.3).
///
/// Starting from `S⁽⁰⁾ = G`, repeatedly: if `sd(S) = d(S)` stop; otherwise
/// `S ← SP₂(S)`, the bottom subnetwork of the split network of `S` (the
/// layers past the split layer that reach the bottom half of the sinks).
///
/// # Errors
///
/// * [`TopologyError::NoSplitLayer`] if some stage has no totally-ordering
///   layer.
/// * [`TopologyError::Precondition`] if a split layer is not complete or not
///   uniformly splittable with fan-out-2 balancers (so "bottom half" is not
///   well-defined), or if the network is not uniform.
pub fn split_sequence(net: &Network) -> Result<SplitSequence, TopologyError> {
    if !net.is_uniform() {
        return Err(TopologyError::NotUniform);
    }
    let mut stages: Vec<SplitStage> = Vec::new();
    let mut current = net.clone();
    loop {
        let val = Valencies::compute(&current);
        let sd = split_depth(&current, &val)?;
        let layer = current.layer(sd);
        let complete = val.layer_is_complete(&current, layer);
        let uniformly_splittable = val.layer_is_uniformly_splittable(&current, layer);
        let terminal = sd == current.depth();
        stages.push(SplitStage {
            network: current.clone(),
            split_depth: Some(sd),
            complete,
            uniformly_splittable,
        });
        if terminal {
            return Ok(SplitSequence { stages });
        }
        if !complete || !uniformly_splittable {
            return Err(TopologyError::Precondition {
                what: "split layer must be complete and uniformly splittable to chop",
            });
        }
        current = bottom_split_network(&current, &val, sd)?;
    }
}

/// Extracts `SP₂(S)`: the subnetwork of layers `sd+1 ..= d` whose balancers
/// reach only the bottom half of the sinks, with the cut wires becoming the
/// new sources (ordered by their position in the split layer) and the bottom
/// sinks renumbered from zero.
fn bottom_split_network(
    net: &Network,
    val: &Valencies,
    sd: usize,
) -> Result<Network, TopologyError> {
    let w_out = net.fan_out();
    if !w_out.is_multiple_of(2) {
        return Err(TopologyError::Precondition {
            what: "bottom split needs an even number of sinks",
        });
    }
    let half = w_out / 2;
    // Bottom-half membership test for a valency set.
    let in_bottom = |v: &crate::bitset::BitSet| v.min().is_some_and(|m| m >= half);

    // Select balancers strictly past the split layer reaching only bottom
    // sinks.
    let mut selected = vec![false; net.size()];
    for (b, _) in net.balancers() {
        if net.balancer_depth(b) > sd && in_bottom(&val.balancer(net, b)) {
            selected[b.index()] = true;
        }
    }

    // Boundary wires: start outside the selection, end inside it (or at a
    // bottom sink directly — only possible when sd = d, excluded by caller).
    // These become the sources of the subnetwork, ordered by wire id, which
    // follows the construction order of the split layer.
    let mut boundary: Vec<(crate::ids::WireId, WireEnd)> = Vec::new();
    for (id, wire) in net.wires() {
        let start_inside = matches!(
            wire.start,
            WireStart::Balancer { balancer, .. } if selected[balancer.index()]
        );
        let end_inside = match wire.end {
            WireEnd::Balancer { balancer, .. } => selected[balancer.index()],
            WireEnd::Sink(s) => s.index() >= half,
        };
        if !start_inside && end_inside {
            boundary.push((id, wire.end));
        }
        if start_inside && !end_inside {
            return Err(TopologyError::Precondition {
                what: "bottom split network leaks a wire to the top half",
            });
        }
    }

    let mut nb = NetworkBuilder::new(boundary.len(), half);
    // Map old balancer ids to new.
    let mut bal_map: Vec<Option<BalancerId>> = vec![None; net.size()];
    for (b, bal) in net.balancers() {
        if selected[b.index()] {
            bal_map[b.index()] = Some(nb.add_balancer(bal.fan_in(), bal.fan_out()));
        }
    }
    let map_end = |end: WireEnd| -> WireEnd {
        match end {
            WireEnd::Sink(s) => WireEnd::Sink(SinkId(s.index() - half)),
            WireEnd::Balancer { balancer, port } => WireEnd::Balancer {
                balancer: bal_map[balancer.index()].expect("selected balancer"),
                port,
            },
        }
    };
    // Boundary wires become source wires.
    for (src_idx, &(_, end)) in boundary.iter().enumerate() {
        nb.connect(WireStart::Source(crate::ids::SourceId(src_idx)), map_end(end))
            .map_err(|_| TopologyError::Precondition {
                what: "bottom split network wiring failed",
            })?;
    }
    // Internal wires.
    for (_, wire) in net.wires() {
        if let WireStart::Balancer { balancer, port } = wire.start {
            if selected[balancer.index()] {
                nb.connect(
                    WireStart::Balancer { balancer: bal_map[balancer.index()].unwrap(), port },
                    map_end(wire.end),
                )
                .map_err(|_| TopologyError::Precondition {
                    what: "bottom split network wiring failed",
                })?;
            }
        }
    }
    nb.finish().map_err(|_| TopologyError::Precondition {
        what: "bottom split network is not a valid balancing network",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{bitonic, counting_tree, merger, periodic};


    #[test]
    fn proposition_5_6_bitonic_split_depth() {
        // sd(B(w)) = (lg²w − lg w + 2) / 2, and B(w) is complete and
        // uniformly splittable.
        for lgw in 1usize..6 {
            let w = 1 << lgw;
            let net = bitonic(w).unwrap();
            let val = Valencies::compute(&net);
            let sd = split_depth(&net, &val).unwrap();
            assert_eq!(sd, (lgw * lgw - lgw + 2) / 2, "sd(B({w}))");
            let layer = net.layer(sd);
            assert!(val.layer_is_complete(&net, layer), "B({w}) complete");
            assert!(
                val.layer_is_uniformly_splittable(&net, layer),
                "B({w}) uniformly splittable"
            );
        }
    }

    #[test]
    fn proposition_5_8_periodic_split_depth() {
        // sd(P(w)) = lg²w − lg w + 1.
        for lgw in 1usize..5 {
            let w = 1 << lgw;
            let net = periodic(w).unwrap();
            let val = Valencies::compute(&net);
            let sd = split_depth(&net, &val).unwrap();
            assert_eq!(sd, lgw * lgw - lgw + 1, "sd(P({w}))");
            let layer = net.layer(sd);
            assert!(val.layer_is_complete(&net, layer));
            assert!(val.layer_is_uniformly_splittable(&net, layer));
        }
    }

    #[test]
    fn proposition_5_9_bitonic_split_sequence() {
        for lgw in 1usize..6 {
            let w = 1 << lgw;
            let net = bitonic(w).unwrap();
            let seq = split_sequence(&net).unwrap();
            assert_eq!(seq.split_number(), lgw, "sp(B({w}))");
            assert!(seq.is_continuously_complete(), "B({w})");
            assert!(seq.is_continuously_uniformly_splittable(), "B({w})");
            // S^(1)(B(w)) is the merging network M(w/2).
            if lgw >= 2 {
                let s1 = &seq.stages[1].network;
                let m = merger(w / 2).unwrap();
                assert_eq!(s1.depth(), m.depth());
                assert_eq!(s1.size(), m.size());
                assert_eq!(s1.fan_out(), w / 2);
            }
        }
    }

    #[test]
    fn proposition_5_10_periodic_split_sequence() {
        for lgw in 1usize..5 {
            let w = 1 << lgw;
            let net = periodic(w).unwrap();
            let seq = split_sequence(&net).unwrap();
            assert_eq!(seq.split_number(), lgw, "sp(P({w}))");
            assert!(seq.is_continuously_complete());
            assert!(seq.is_continuously_uniformly_splittable());
        }
    }

    #[test]
    fn final_stage_depth_is_one_for_classic_networks() {
        // Corollaries 5.12/5.13 use d(S^(sp)) = 1 at ℓ = lg w.
        for net in [bitonic(16).unwrap(), periodic(16).unwrap()] {
            let seq = split_sequence(&net).unwrap();
            let sp = seq.split_number();
            assert_eq!(seq.stage_depth(sp), 1);
            assert_eq!(seq.stages.last().unwrap().network.depth(), 1);
        }
    }

    #[test]
    fn stage_depths_decrease() {
        let net = bitonic(32).unwrap();
        let seq = split_sequence(&net).unwrap();
        for l in 1..seq.split_number() {
            assert!(seq.stage_depth(l) < seq.stage_depth(l - 1));
        }
    }

    #[test]
    fn tree_has_trivial_split_only_at_last_layer() {
        // Tree balancers interleave leaves, so only the last layer is
        // totally ordering: sd = d and the sequence has a single stage.
        let net = counting_tree(8).unwrap();
        let seq = split_sequence(&net).unwrap();
        assert_eq!(seq.split_number(), 1);
        let val = Valencies::compute(&net);
        assert_eq!(split_depth(&net, &val).unwrap(), net.depth());
    }

    #[test]
    fn identity_network_has_no_split_layer() {
        let net = crate::construct::identity(4).unwrap();
        let val = Valencies::compute(&net);
        assert_eq!(split_depth(&net, &val), Err(TopologyError::NoSplitLayer));
    }

    #[test]
    fn non_uniform_network_is_rejected() {
        let mut lb = crate::builder::LayeredBuilder::new(3);
        lb.balancer(&[0, 1]);
        let net = lb.finish().unwrap();
        assert_eq!(split_sequence(&net).err(), Some(TopologyError::NotUniform));
    }

    #[test]
    fn stage_depth_matches_theorem_formula_for_bitonic() {
        // For B(w): d(S^(ℓ)) = lg w − ℓ for ℓ >= 1 (each merger chop loses
        // one layer), and d(S^(0)) = d(B(w)).
        let lgw = 5usize;
        let net = bitonic(1 << lgw).unwrap();
        let seq = split_sequence(&net).unwrap();
        assert_eq!(seq.stage_depth(0), lgw * (lgw + 1) / 2);
        for l in 1..seq.split_number() {
            assert_eq!(seq.stage_depth(l), lgw - l, "d(S^({l}))");
        }
    }
}
