//! Graph isomorphism of balancing networks.
//!
//! Herlihy and Tirthapura established that the block network `L(w)` and the
//! merging network `M(w)` are isomorphic as graphs (Section 2.6.2 of the
//! paper uses this to transfer path properties from `M(w)` to `L(w)`).
//! [`are_isomorphic`] verifies such claims computationally.
//!
//! The isomorphism notion is *unlabeled graph* isomorphism: a bijection of
//! balancers (plus arbitrary bijections of sources and sinks) preserving
//! wire multiplicities. Port order is not preserved — as graphs, balancers
//! are unordered multi-degree nodes.

use crate::ids::BalancerId;
use crate::network::{Network, WireEnd, WireStart};

/// Decides whether two networks are isomorphic as graphs.
///
/// Uses layer-by-layer backtracking: balancers are matched in topological
/// order, and a candidate match must agree on fan-in/fan-out, depth, number
/// of source inputs, number of sink outputs, and the multiset of
/// already-matched predecessor balancers (with wire multiplicities).
///
/// Exponential in the worst case; intended for the moderate-size networks of
/// the paper's constructions (it verifies `L(w) ≅ M(w)` up to `w = 32` in
/// well under a second).
///
/// # Example
///
/// ```
/// use cnet_topology::construct::{block, merger};
/// use cnet_topology::analysis::are_isomorphic;
///
/// let l8 = block(8)?;
/// let m8 = merger(8)?;
/// assert!(are_isomorphic(&l8, &m8));
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
pub fn are_isomorphic(a: &Network, b: &Network) -> bool {
    if a.fan_in() != b.fan_in()
        || a.fan_out() != b.fan_out()
        || a.size() != b.size()
        || a.depth() != b.depth()
        || a.num_wires() != b.num_wires()
    {
        return false;
    }
    let sig_a = Signatures::compute(a);
    let sig_b = Signatures::compute(b);
    // Quick rejection: the multiset of local signatures must agree.
    let mut sa: Vec<_> = sig_a.local.clone();
    let mut sb: Vec<_> = sig_b.local.clone();
    sa.sort_unstable();
    sb.sort_unstable();
    if sa != sb {
        return false;
    }

    let order = a.topo_order();
    let mut mapping: Vec<Option<BalancerId>> = vec![None; a.size()];
    let mut used: Vec<bool> = vec![false; b.size()];
    backtrack(b, &sig_a, &sig_b, &order, 0, &mut mapping, &mut used)
}

/// Local invariants of each balancer, used for pruning.
#[derive(Clone, Debug)]
struct Signatures {
    /// `(depth, fan_in, fan_out, #source inputs, #sink outputs)` per
    /// balancer.
    local: Vec<(usize, usize, usize, usize, usize)>,
    /// Predecessor balancers (with multiplicity) per balancer.
    preds: Vec<Vec<BalancerId>>,
}

impl Signatures {
    fn compute(net: &Network) -> Self {
        let n = net.size();
        let mut source_inputs = vec![0usize; n];
        let mut sink_outputs = vec![0usize; n];
        let mut preds: Vec<Vec<BalancerId>> = vec![Vec::new(); n];
        for (_, wire) in net.wires() {
            match (wire.start, wire.end) {
                (WireStart::Source(_), WireEnd::Balancer { balancer, .. }) => {
                    source_inputs[balancer.index()] += 1;
                }
                (WireStart::Balancer { balancer: from, .. }, WireEnd::Balancer { balancer: to, .. }) => {
                    preds[to.index()].push(from);
                }
                (WireStart::Balancer { balancer, .. }, WireEnd::Sink(_)) => {
                    sink_outputs[balancer.index()] += 1;
                }
                (WireStart::Source(_), WireEnd::Sink(_)) => {}
            }
        }
        for p in &mut preds {
            p.sort_unstable();
        }
        let local = (0..n)
            .map(|i| {
                let bid = BalancerId(i);
                let bal = net.balancer(bid);
                (
                    net.balancer_depth(bid),
                    bal.fan_in(),
                    bal.fan_out(),
                    source_inputs[i],
                    sink_outputs[i],
                )
            })
            .collect();
        Signatures { local, preds }
    }
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    b: &Network,
    sig_a: &Signatures,
    sig_b: &Signatures,
    order: &[BalancerId],
    pos: usize,
    mapping: &mut Vec<Option<BalancerId>>,
    used: &mut Vec<bool>,
) -> bool {
    if pos == order.len() {
        return true;
    }
    let cur = order[pos];
    // Mapped predecessor multiset of `cur` (all predecessors are earlier in
    // topological order, hence already mapped).
    let mut mapped_preds: Vec<BalancerId> = sig_a.preds[cur.index()]
        .iter()
        .map(|p| mapping[p.index()].expect("topological order maps predecessors first"))
        .collect();
    mapped_preds.sort_unstable();

    for cand_idx in 0..b.size() {
        if used[cand_idx] {
            continue;
        }
        let cand = BalancerId(cand_idx);
        if sig_a.local[cur.index()] != sig_b.local[cand_idx] {
            continue;
        }
        if sig_b.preds[cand_idx] != mapped_preds {
            continue;
        }
        mapping[cur.index()] = Some(cand);
        used[cand_idx] = true;
        if backtrack(b, sig_a, sig_b, order, pos + 1, mapping, used) {
            return true;
        }
        mapping[cur.index()] = None;
        used[cand_idx] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LayeredBuilder;
    use crate::construct::{bitonic, block, block_interleaved, merger, periodic};

    #[test]
    fn herlihy_tirthapura_block_is_isomorphic_to_merger() {
        for w in [2usize, 4, 8, 16] {
            assert!(
                are_isomorphic(&block(w).unwrap(), &merger(w).unwrap()),
                "L({w}) ≅ M({w})"
            );
        }
    }

    #[test]
    fn both_block_constructions_are_isomorphic() {
        for w in [2usize, 4, 8, 16] {
            assert!(
                are_isomorphic(&block(w).unwrap(), &block_interleaved(w).unwrap()),
                "two constructions of L({w})"
            );
        }
    }

    #[test]
    fn network_is_isomorphic_to_itself() {
        let net = bitonic(8).unwrap();
        assert!(are_isomorphic(&net, &net));
    }

    #[test]
    fn different_sizes_are_not_isomorphic() {
        assert!(!are_isomorphic(&bitonic(4).unwrap(), &bitonic(8).unwrap()));
    }

    #[test]
    fn bitonic_and_periodic_differ() {
        // B(4) has depth 3 and 6 balancers; P(4) has depth 4 and 8.
        assert!(!are_isomorphic(&bitonic(4).unwrap(), &periodic(4).unwrap()));
    }

    #[test]
    fn same_profile_different_wiring_detected() {
        // Two 4-line, two-balancer networks: series on the same lines vs
        // parallel on disjoint lines. Same size, different structure.
        let mut s = LayeredBuilder::new(4);
        s.balancer(&[0, 1]);
        s.balancer(&[0, 1]);
        let series = s.finish().unwrap();

        let mut p = LayeredBuilder::new(4);
        p.balancer(&[0, 1]);
        p.balancer(&[2, 3]);
        let parallel = p.finish().unwrap();

        assert!(!are_isomorphic(&series, &parallel));
    }

    #[test]
    fn line_permutation_preserves_isomorphism() {
        // The same abstract network laid out on permuted lines.
        let mut x = LayeredBuilder::new(4);
        x.balancer(&[0, 1]);
        x.balancer(&[1, 2]);
        let a = x.finish().unwrap();

        let mut y = LayeredBuilder::new(4);
        y.balancer(&[3, 2]);
        y.balancer(&[2, 0]);
        let b = y.finish().unwrap();

        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn merger_and_block_internal_structure_differs_from_random_column() {
        // lg w columns of (0,1),(2,3),… balancers has the right size and
        // depth for L(4) but is two disconnected components.
        let mut lb = LayeredBuilder::new(4);
        lb.balancer(&[0, 1]);
        lb.balancer(&[2, 3]);
        lb.balancer(&[0, 1]);
        lb.balancer(&[2, 3]);
        let columns = lb.finish().unwrap();
        assert_eq!(columns.size(), block(4).unwrap().size());
        assert_eq!(columns.depth(), block(4).unwrap().depth());
        assert!(!are_isomorphic(&columns, &block(4).unwrap()));
    }
}
