//! Structural analysis of balancing networks (Sections 2.5 and 5.3).
//!
//! * [`valency`] — sink-reachability sets `Val(·)` for wires and balancers,
//!   and the derived predicates: *univalent*, *totally ordering*, and
//!   *complete* balancers and layers.
//! * [`metrics`] — influence radius `irad(G)` and related global measures
//!   used by the timing conditions of Table 1.
//! * [`split`] — split depth `sd(G)`, split networks, split sequences
//!   `S⁽ℓ⁾(G)`, split numbers `sp(G)`, and the *continuously complete /
//!   continuously uniformly splittable* predicates behind Theorem 5.11.
//! * [`iso`] — graph isomorphism of networks, verifying the
//!   Herlihy–Tirthapura claim that the block network `L(w)` and the merging
//!   network `M(w)` are isomorphic.

pub mod iso;
pub mod metrics;
pub mod split;
pub mod valency;

pub use iso::are_isomorphic;
pub use metrics::influence_radius;
pub use split::{split_depth, split_sequence, SplitSequence};
pub use valency::Valencies;
