//! Valency analysis: which sinks are reachable from each wire and balancer.
//!
//! Section 5.3 of the paper defines, for an output wire `j` of a balancer,
//! `Val(j)` as the set of sink nodes reachable from `j`, and `Val(B)` as the
//! union over the balancer's output wires. These sets drive the definitions
//! of *univalent*, *totally ordering*, and *complete* balancers and layers,
//! which in turn define split depths and split sequences.

use crate::bitset::BitSet;
use crate::ids::{BalancerId, WireId};
use crate::network::{Layer, Network, WireEnd};

/// Precomputed sink-reachability sets for every wire of a network.
///
/// # Example
///
/// ```
/// use cnet_topology::construct::bitonic;
/// use cnet_topology::analysis::Valencies;
/// use cnet_topology::ids::BalancerId;
///
/// let net = bitonic(4)?;
/// let val = Valencies::compute(&net);
/// // Every layer-1 balancer of a counting network is complete.
/// for b in net.layer(1).balancers() {
///     assert!(val.is_complete(&net, b));
/// }
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Valencies {
    per_wire: Vec<BitSet>,
}

impl Valencies {
    /// Computes all wire valencies by a reverse topological sweep.
    pub fn compute(net: &Network) -> Self {
        let w_out = net.fan_out();
        let mut per_wire: Vec<BitSet> = vec![BitSet::new(w_out); net.num_wires()];
        // Wires into sinks reach exactly that sink.
        for (id, wire) in net.wires() {
            if let WireEnd::Sink(s) = wire.end {
                per_wire[id.index()].insert(s.index());
            }
        }
        // In reverse topological order, a balancer's input wires reach the
        // union of whatever its output wires reach.
        for &b in net.topo_order().iter().rev() {
            let bal = net.balancer(b);
            let mut out_union = BitSet::new(w_out);
            for &w in bal.outputs() {
                out_union.union_with(&per_wire[w.index()]);
            }
            for &w in bal.inputs() {
                per_wire[w.index()].union_with(&out_union);
            }
        }
        Valencies { per_wire }
    }

    /// `Val(z)`: the sinks reachable from wire `z`.
    pub fn wire(&self, id: WireId) -> &BitSet {
        &self.per_wire[id.index()]
    }

    /// `Val(j)` for output port `port` of `balancer`: the sinks reachable
    /// from that output wire.
    pub fn output_port(&self, net: &Network, balancer: BalancerId, port: usize) -> &BitSet {
        self.wire(net.balancer(balancer).output(port))
    }

    /// `Val(B)`: the union of the valencies of the balancer's output wires.
    pub fn balancer(&self, net: &Network, balancer: BalancerId) -> BitSet {
        let bal = net.balancer(balancer);
        let mut v = BitSet::new(net.fan_out());
        for &w in bal.outputs() {
            v.union_with(&self.per_wire[w.index()]);
        }
        v
    }

    /// A balancer is **univalent** if its output-port valencies are pairwise
    /// disjoint: each reachable sink unambiguously determines the output
    /// wire.
    pub fn is_univalent(&self, net: &Network, balancer: BalancerId) -> bool {
        let bal = net.balancer(balancer);
        for a in 0..bal.fan_out() {
            for b in a + 1..bal.fan_out() {
                if !self.wire(bal.output(a)).is_disjoint(self.wire(bal.output(b))) {
                    return false;
                }
            }
        }
        true
    }

    /// A balancer is **totally ordering** if its output-port valencies are
    /// totally ordered by the "every element smaller" relation `≺`.
    pub fn is_totally_ordering(&self, net: &Network, balancer: BalancerId) -> bool {
        let bal = net.balancer(balancer);
        for a in 0..bal.fan_out() {
            for b in a + 1..bal.fan_out() {
                let va = self.wire(bal.output(a));
                let vb = self.wire(bal.output(b));
                if !va.precedes(vb) && !vb.precedes(va) {
                    return false;
                }
            }
        }
        true
    }

    /// A balancer is **complete** if `Val(B)` is the full sink set.
    pub fn is_complete(&self, net: &Network, balancer: BalancerId) -> bool {
        self.balancer(net, balancer).len() == net.fan_out()
    }

    /// A balancer is **uniformly splittable** if all of its output-port
    /// valencies have equal cardinality.
    pub fn is_uniformly_splittable(&self, net: &Network, balancer: BalancerId) -> bool {
        let bal = net.balancer(balancer);
        let first = self.wire(bal.output(0)).len();
        (1..bal.fan_out()).all(|p| self.wire(bal.output(p)).len() == first)
    }

    /// A layer is univalent if every balancer in it is.
    pub fn layer_is_univalent(&self, net: &Network, layer: &Layer) -> bool {
        layer.balancers().all(|b| self.is_univalent(net, b))
    }

    /// A layer is totally ordering if every balancer in it is.
    pub fn layer_is_totally_ordering(&self, net: &Network, layer: &Layer) -> bool {
        layer.balancers().all(|b| self.is_totally_ordering(net, b))
    }

    /// A layer is complete if every balancer in it is.
    pub fn layer_is_complete(&self, net: &Network, layer: &Layer) -> bool {
        layer.balancers().all(|b| self.is_complete(net, b))
    }

    /// A layer is uniformly splittable if every balancer in it is.
    pub fn layer_is_uniformly_splittable(&self, net: &Network, layer: &Layer) -> bool {
        layer.balancers().all(|b| self.is_uniformly_splittable(net, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{bitonic, counting_tree, merger, periodic};

    #[test]
    fn counting_network_has_path_from_every_input_to_every_output() {
        // Section 2.5: in a counting network there is a path from every input
        // wire to every output wire — i.e. every input wire's valency is full.
        for net in [bitonic(8).unwrap(), periodic(8).unwrap()] {
            let val = Valencies::compute(&net);
            for i in 0..net.fan_in() {
                let v = val.wire(net.source_wire(crate::ids::SourceId(i)));
                assert_eq!(v.len(), net.fan_out(), "input {i} of {net}");
            }
        }
    }

    #[test]
    fn layer_one_balancers_are_complete() {
        let net = bitonic(8).unwrap();
        let val = Valencies::compute(&net);
        assert!(val.layer_is_complete(&net, net.layer(1)));
    }

    #[test]
    fn last_layer_balancers_are_totally_ordering() {
        // The final column of any counting network of (2,2)-balancers feeds
        // adjacent sinks: valencies {j} and {j'}, totally ordered.
        for net in [bitonic(8).unwrap(), periodic(8).unwrap()] {
            let val = Valencies::compute(&net);
            let d = net.depth();
            assert!(val.layer_is_totally_ordering(&net, net.layer(d)));
            assert!(val.layer_is_univalent(&net, net.layer(d)));
        }
    }

    #[test]
    fn first_bitonic_layer_is_not_totally_ordering() {
        let net = bitonic(8).unwrap();
        let val = Valencies::compute(&net);
        assert!(!val.layer_is_totally_ordering(&net, net.layer(1)));
    }

    #[test]
    fn tree_balancers_are_totally_ordering_and_uniform() {
        // Every balancer in the counting tree splits its reachable leaves
        // into two sets that interleave — wait: with step-order leaves, port
        // 0 reaches the even-position leaves. Those interleave with port 1's,
        // so tree balancers are univalent but NOT totally ordering (except at
        // the last layer).
        let net = counting_tree(8).unwrap();
        let val = Valencies::compute(&net);
        for (b, _) in net.balancers() {
            assert!(val.is_univalent(&net, b));
            assert!(val.is_uniformly_splittable(&net, b));
        }
        let d = net.depth();
        assert!(val.layer_is_totally_ordering(&net, net.layer(d)));
        assert!(!val.layer_is_totally_ordering(&net, net.layer(1)));
    }

    #[test]
    fn merger_first_layer_splits_halves() {
        // Proposition 5.9's key step: in M(w), each first-layer balancer has
        // Val(port 0) = top half, Val(port 1) = bottom half.
        let w = 8;
        let net = merger(w).unwrap();
        let val = Valencies::compute(&net);
        for b in net.layer(1).balancers() {
            let top = val.output_port(&net, b, 0);
            let bottom = val.output_port(&net, b, 1);
            assert_eq!(top.iter().collect::<Vec<_>>(), (0..w / 2).collect::<Vec<_>>());
            assert_eq!(
                bottom.iter().collect::<Vec<_>>(),
                (w / 2..w).collect::<Vec<_>>()
            );
            assert!(val.is_totally_ordering(&net, b));
            assert!(val.is_complete(&net, b));
            assert!(val.is_uniformly_splittable(&net, b));
        }
    }

    #[test]
    fn valencies_shrink_with_depth_in_uniform_splits() {
        let net = bitonic(16).unwrap();
        let val = Valencies::compute(&net);
        // Deeper wires reach no more sinks than shallower ones on any path.
        for (id, wire) in net.wires() {
            if let crate::network::WireEnd::Balancer { balancer, .. } = wire.end {
                // The wire's valency is exactly the downstream balancer's.
                assert_eq!(val.wire(id), &val.balancer(&net, balancer));
            }
        }
    }
}
