//! Global structural metrics used by the timing conditions of Table 1.

use crate::analysis::valency::Valencies;
use crate::error::TopologyError;
use crate::network::Network;

/// Computes the **influence radius** `irad(G)` of a uniform counting
/// network (Table 1, after \[MPT97\]): the maximum, over all pairs of distinct
/// output wires `j` and `k`, of the distance from `j` to the least common
/// ancestor of `j` and `k` — where an *ancestor* of a pair of sinks is a
/// balancer from which both are reachable, the *least* common ancestor is a
/// deepest one, and the distance from a node at layer `ℓ` to a sink is
/// `d(G) + 1 − ℓ` wire hops (well-defined because the network is uniform).
///
/// For the bitonic network, `irad(B(w)) = lg w`, so \[MPT97\]'s necessary
/// condition `c_max/c_min ≤ d/irad + 1` specializes to `(lg w + 3)/2` —
/// exactly the asynchrony threshold of Proposition 5.2.
///
/// # Errors
///
/// Returns [`TopologyError::NotUniform`] if the network is not uniform, and
/// [`TopologyError::Precondition`] if some pair of sinks has no common
/// ancestor (the network is not a counting network) or the network has fewer
/// than two sinks.
///
/// # Example
///
/// ```
/// use cnet_topology::construct::bitonic;
/// use cnet_topology::analysis::influence_radius;
///
/// let b8 = bitonic(8)?;
/// assert_eq!(influence_radius(&b8)?, 3); // lg 8
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn influence_radius(net: &Network) -> Result<usize, TopologyError> {
    if !net.is_uniform() {
        return Err(TopologyError::NotUniform);
    }
    if net.fan_out() < 2 {
        return Err(TopologyError::Precondition {
            what: "influence radius needs at least two output wires",
        });
    }
    let val = Valencies::compute(net);
    // Per-balancer valency, cached.
    let bal_val: Vec<_> = net.balancers().map(|(b, _)| val.balancer(net, b)).collect();
    let mut irad = 0usize;
    for j in 0..net.fan_out() {
        for k in j + 1..net.fan_out() {
            let mut deepest: Option<usize> = None;
            for (b, _) in net.balancers() {
                let v = &bal_val[b.index()];
                if v.contains(j) && v.contains(k) {
                    let d = net.balancer_depth(b);
                    deepest = Some(deepest.map_or(d, |cur| cur.max(d)));
                }
            }
            let lca_depth = deepest.ok_or(TopologyError::Precondition {
                what: "a pair of sinks has no common ancestor balancer",
            })?;
            irad = irad.max(net.depth() + 1 - lca_depth);
        }
    }
    Ok(irad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LayeredBuilder;
    use crate::construct::{bitonic, counting_tree, periodic};

    #[test]
    fn bitonic_influence_radius_is_lg_w() {
        for lgw in 1usize..6 {
            let w = 1 << lgw;
            let net = bitonic(w).unwrap();
            assert_eq!(influence_radius(&net).unwrap(), lgw, "irad(B({w}))");
        }
    }

    #[test]
    fn periodic_influence_radius_is_lg_w() {
        // The last block's TB layer is the deepest complete layer; its
        // distance to the sinks is lg w.
        for lgw in 1usize..5 {
            let w = 1 << lgw;
            let net = periodic(w).unwrap();
            assert_eq!(influence_radius(&net).unwrap(), lgw, "irad(P({w}))");
        }
    }

    #[test]
    fn tree_influence_radius_is_depth() {
        // Sinks 0 and 1 only share the root as an ancestor (their paths
        // diverge immediately: 0 is an even position, 1 odd).
        let net = counting_tree(8).unwrap();
        assert_eq!(influence_radius(&net).unwrap(), net.depth());
    }

    #[test]
    fn non_uniform_network_is_rejected() {
        let mut lb = LayeredBuilder::new(3);
        lb.balancer(&[0, 1]);
        let net = lb.finish().unwrap();
        assert_eq!(influence_radius(&net), Err(TopologyError::NotUniform));
    }

    #[test]
    fn single_output_is_rejected() {
        let net = counting_tree(1).unwrap();
        assert!(matches!(
            influence_radius(&net),
            Err(TopologyError::Precondition { .. })
        ));
    }

    #[test]
    fn disconnected_pair_is_rejected() {
        // Two independent balancers on lines (0,1) and (2,3): sinks 0 and 2
        // share no common ancestor.
        let mut lb = LayeredBuilder::new(4);
        lb.balancer(&[0, 1]);
        lb.balancer(&[2, 3]);
        let net = lb.finish().unwrap();
        assert!(matches!(
            influence_radius(&net),
            Err(TopologyError::Precondition { .. })
        ));
    }
}
