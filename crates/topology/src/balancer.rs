//! Balancers: the routing elements of a balancing network.

use crate::ids::WireId;
use cnet_util::json_struct;

/// An `(f_in, f_out)`-balancer: a routing element that receives tokens on
/// `f_in` input wires and forwards them to its `f_out` output wires in
/// round-robin order, top to bottom (Section 2.1 of the paper).
///
/// The balancer's dynamic state — which output port the next token leaves on —
/// lives in [`crate::state::NetworkState`], not here; `Balancer` records only
/// the wiring.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Balancer {
    /// Incoming wires, one per input port, in port order.
    inputs: Vec<WireId>,
    /// Outgoing wires, one per output port, in port order (port 0 is the
    /// "top" wire, which the first token exits on).
    outputs: Vec<WireId>,
}

json_struct!(Balancer { inputs, outputs });

impl Balancer {
    /// Creates a balancer from its incoming and outgoing wires.
    ///
    /// # Panics
    ///
    /// Panics if either list is empty; a balancer must have fan-in ≥ 1 and
    /// fan-out ≥ 1 (`NetworkBuilder` reports this as a [`crate::BuildError`]
    /// before reaching this constructor).
    pub(crate) fn new(inputs: Vec<WireId>, outputs: Vec<WireId>) -> Self {
        assert!(!inputs.is_empty() && !outputs.is_empty(), "zero fan");
        Balancer { inputs, outputs }
    }

    /// The balancer's fan-in `f_in`.
    #[inline]
    pub fn fan_in(&self) -> usize {
        self.inputs.len()
    }

    /// The balancer's fan-out `f_out`.
    #[inline]
    pub fn fan_out(&self) -> usize {
        self.outputs.len()
    }

    /// Returns `true` if fan-in equals fan-out (a *regular* balancer).
    #[inline]
    pub fn is_regular(&self) -> bool {
        self.fan_in() == self.fan_out()
    }

    /// The incoming wires in input-port order.
    #[inline]
    pub fn inputs(&self) -> &[WireId] {
        &self.inputs
    }

    /// The outgoing wires in output-port order.
    #[inline]
    pub fn outputs(&self) -> &[WireId] {
        &self.outputs
    }

    /// The wire attached to output port `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= fan_out()`.
    #[inline]
    pub fn output(&self, port: usize) -> WireId {
        self.outputs[port]
    }

    /// The wire attached to input port `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= fan_in()`.
    #[inline]
    pub fn input(&self, port: usize) -> WireId {
        self.inputs[port]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wires(ids: &[usize]) -> Vec<WireId> {
        ids.iter().copied().map(WireId).collect()
    }

    #[test]
    fn fan_accessors() {
        let b = Balancer::new(wires(&[0, 1, 2]), wires(&[3, 4]));
        assert_eq!(b.fan_in(), 3);
        assert_eq!(b.fan_out(), 2);
        assert!(!b.is_regular());
        assert_eq!(b.input(1), WireId(1));
        assert_eq!(b.output(0), WireId(3));
    }

    #[test]
    fn regular_balancer() {
        let b = Balancer::new(wires(&[0, 1]), wires(&[2, 3]));
        assert!(b.is_regular());
        assert_eq!(b.inputs(), &[WireId(0), WireId(1)]);
        assert_eq!(b.outputs(), &[WireId(2), WireId(3)]);
    }

    #[test]
    #[should_panic(expected = "zero fan")]
    fn zero_fan_panics() {
        let _ = Balancer::new(vec![], wires(&[0]));
    }
}
