//! The unified trace layer: one event language for every execution source,
//! and online monitors that consume it one event at a time.
//!
//! Three producers used to speak three dialects — the simulator's
//! `TokenRecord`s, the threaded runtime's `RecordedOp`s, and the checkers'
//! `Op` slices. This module gives them a single currency:
//!
//! * [`OpEvent`] — one completed increment: process, integer-nanosecond
//!   enter/exit timestamps with explicit sequence-number tiebreaks, and the
//!   value returned. (`cnet_core::op::Op` is this type, re-exported.)
//! * [`OpSink`] — anything that accepts a stream of events: a plain
//!   `Vec<OpEvent>`, or the monitors below.
//! * [`StreamingLinMonitor`] / [`StreamingScMonitor`] /
//!   [`StreamingFractionMeter`] / [`StreamingAuditor`] — **incremental**
//!   forms of the Section 2.4 checkers and Section 5.1 fraction meters:
//!   each event costs `O(log n)` amortized (a bounded heap of currently
//!   pending operations plus `O(1)` per-process state), so a live run can
//!   be audited while it happens with memory proportional to its
//!   *concurrency*, not its length. The batch functions in
//!   [`crate::consistency`] and [`crate::fractions`] are thin wrappers
//!   over these cores.
//! * [`EventMerger`] — turns per-thread (per-shard) event streams, each
//!   internally ordered by enter time, into the single globally
//!   enter-ordered stream the monitors require, using per-shard
//!   watermarks so events are released exactly when no straggler can
//!   precede them.
//!
//! # Time and ties
//!
//! Timestamps are integer nanoseconds from a single monotonic clock, so
//! comparing them is exact; `enter_seq`/`exit_seq` break the remaining
//! ties deterministically. The merger assigns sequence numbers so that an
//! enter and an exit falling in the *same* nanosecond compare as
//! overlapping — the clock could not separate them, so no precedence (and
//! hence no violation) is ever fabricated from a tie.

use crate::consistency::Violation;
use cnet_sim::exec::TimedExecution;
use cnet_util::hist::LatencyHistogram;
use cnet_util::json_struct;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::ops::Bound::{Excluded, Unbounded};

/// One completed increment operation — the shared event type of the whole
/// workspace (the simulator, the threaded runtime, and the checkers all
/// speak it; `cnet_core::op::Op` is an alias).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpEvent {
    /// The process that issued the operation.
    pub process: usize,
    /// Nanoseconds (monotonic, process-local epoch) of the operation's
    /// first step.
    pub enter_ns: u64,
    /// Tiebreak for `enter_ns` (position in a global event order).
    pub enter_seq: usize,
    /// Nanoseconds of the operation's last step (when the value was
    /// obtained).
    pub exit_ns: u64,
    /// Tiebreak for `exit_ns`.
    pub exit_seq: usize,
    /// The value returned.
    pub value: u64,
}

json_struct!(OpEvent { process, enter_ns, enter_seq, exit_ns, exit_seq, value });

impl OpEvent {
    /// The sort key of the operation's start: `(enter_ns, enter_seq)`.
    #[inline]
    pub fn enter_key(&self) -> (u64, usize) {
        (self.enter_ns, self.enter_seq)
    }

    /// The sort key of the operation's completion: `(exit_ns, exit_seq)`.
    #[inline]
    pub fn exit_key(&self) -> (u64, usize) {
        (self.exit_ns, self.exit_seq)
    }

    /// Whether this operation **completely precedes** `other`: its last
    /// step comes before the other's first step (ties resolved by sequence
    /// number).
    #[inline]
    pub fn completely_precedes(&self, other: &OpEvent) -> bool {
        self.exit_key() < other.enter_key()
    }

    /// Whether the two operations overlap in time.
    #[inline]
    pub fn overlaps(&self, other: &OpEvent) -> bool {
        !self.completely_precedes(other) && !other.completely_precedes(self)
    }
}

/// Converts simulator seconds to trace nanoseconds: `(t * 1e9)`, rounded.
/// Monotone, so the simulator's event order survives; residual ties are
/// covered by the sequence numbers the simulator already assigns.
#[inline]
pub fn secs_to_ns(t: f64) -> u64 {
    (t.max(0.0) * 1.0e9).round() as u64
}

/// A consumer of trace events.
pub trait OpSink {
    /// Accepts one completed operation.
    fn record(&mut self, ev: OpEvent);
}

impl OpSink for Vec<OpEvent> {
    fn record(&mut self, ev: OpEvent) {
        self.push(ev);
    }
}

/// Streams a simulated execution into a sink in **enter order** (the order
/// the online monitors require), converting times with [`secs_to_ns`] and
/// keeping the simulator's sequence tiebreaks. Returns the event count.
pub fn stream_execution(exec: &TimedExecution, sink: &mut impl OpSink) -> usize {
    let mut events: Vec<OpEvent> = exec
        .records()
        .iter()
        .map(|r| OpEvent {
            process: r.process.index(),
            enter_ns: secs_to_ns(r.enter_time),
            enter_seq: r.enter_seq,
            exit_ns: secs_to_ns(r.exit_time),
            exit_seq: r.exit_seq,
            value: r.value,
        })
        .collect();
    events.sort_by_key(|e| e.enter_key());
    let n = events.len();
    for ev in events {
        sink.record(ev);
    }
    n
}

/// Indices of `ops` sorted by [`OpEvent::enter_key`] (stable), the feed
/// order for [`StreamingLinMonitor`] and [`StreamingFractionMeter`].
pub fn enter_order(ops: &[OpEvent]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ops.len()).collect();
    order.sort_by_key(|&i| ops[i].enter_key());
    order
}

/// An operation still pending inside a monitor, ordered by completion key
/// (then by arrival, for deterministic pops on full-key ties).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Pending {
    exit_ns: u64,
    exit_seq: usize,
    arrival: usize,
    value: u64,
}

/// Online linearizability checker for counting histories.
///
/// Feed events in nondecreasing [`OpEvent::enter_key`] order (the natural
/// order of a live trace; [`enter_order`] provides it for a batch). Each
/// [`push`](Self::push) is `O(log n)` amortized; memory is bounded by the
/// maximum number of simultaneously pending operations, not the history
/// length.
///
/// The algorithm is the batch sweep run incrementally: a min-heap of
/// pending operations keyed by completion, popped as later operations
/// enter, tracking the maximum value among completed operations. An
/// operation entering after a completed operation with a larger value is a
/// violation (for counting, this pairwise condition *is* linearizability —
/// see [`crate::consistency`]).
///
/// # Example
///
/// ```
/// use cnet_core::op::op;
/// use cnet_core::trace::StreamingLinMonitor;
///
/// let mut mon = StreamingLinMonitor::new();
/// assert!(mon.push(&op(0, 0.0, 1.0, 5)).is_none());
/// let v = mon.push(&op(1, 2.0, 3.0, 3)).expect("5 finished before 3 started");
/// assert_eq!((v.earlier, v.later), (0, 1)); // indices in push order
/// ```
#[derive(Clone, Debug, Default)]
pub struct StreamingLinMonitor {
    pending: BinaryHeap<Reverse<Pending>>,
    /// `(value, push index)` of the completed operation with the largest
    /// value so far.
    max_finished: Option<(u64, usize)>,
    last_enter: Option<(u64, usize)>,
    pushed: usize,
    first: Option<Violation>,
}

impl StreamingLinMonitor {
    /// A fresh monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one event; returns a violation witness if this event's
    /// value contradicts an already-completed operation. Witness indices
    /// are **push indices** (0-based order of `push` calls).
    ///
    /// # Panics
    ///
    /// Panics if events arrive out of enter order.
    pub fn push(&mut self, ev: &OpEvent) -> Option<Violation> {
        let key = ev.enter_key();
        assert!(
            self.last_enter.is_none_or(|k| k <= key),
            "StreamingLinMonitor: events must arrive in nondecreasing enter order"
        );
        self.last_enter = Some(key);
        let id = self.pushed;
        self.pushed += 1;
        while let Some(&Reverse(top)) = self.pending.peek() {
            if (top.exit_ns, top.exit_seq) < key {
                self.pending.pop();
                if self.max_finished.is_none_or(|(mv, _)| top.value > mv) {
                    self.max_finished = Some((top.value, top.arrival));
                }
            } else {
                break;
            }
        }
        let verdict = match self.max_finished {
            Some((mv, mid)) if mv > ev.value => Some(Violation { earlier: mid, later: id }),
            _ => None,
        };
        if let Some(v) = verdict {
            self.first.get_or_insert(v);
        }
        self.pending.push(Reverse(Pending {
            exit_ns: ev.exit_ns,
            exit_seq: ev.exit_seq,
            arrival: id,
            value: ev.value,
        }));
        verdict
    }

    /// The first violation witnessed, if any (push indices).
    pub fn first_violation(&self) -> Option<Violation> {
        self.first
    }

    /// Whether no violation has been witnessed so far.
    pub fn is_linearizable(&self) -> bool {
        self.first.is_none()
    }

    /// Events consumed so far.
    pub fn operations(&self) -> usize {
        self.pushed
    }

    /// Operations currently pending (the memory bound: maximum concurrency,
    /// not history length).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

impl OpSink for StreamingLinMonitor {
    fn record(&mut self, ev: OpEvent) {
        let _ = self.push(&ev);
    }
}

/// Online sequential-consistency checker for counting histories.
///
/// Feed each process's events in its program order (any global interleave
/// of processes is fine — per-process order is all that matters). `O(1)`
/// per event: only the previous value per process is retained.
///
/// # Example
///
/// ```
/// use cnet_core::op::op;
/// use cnet_core::trace::StreamingScMonitor;
///
/// let mut mon = StreamingScMonitor::new();
/// assert!(mon.push(&op(0, 0.0, 1.0, 5)).is_none());
/// assert!(mon.push(&op(1, 2.0, 3.0, 3)).is_none()); // other process: fine
/// assert!(mon.push(&op(0, 4.0, 5.0, 4)).is_some()); // p0 decreased
/// ```
#[derive(Clone, Debug, Default)]
pub struct StreamingScMonitor {
    /// Per process: `(value, push index)` of its previous operation.
    prev: HashMap<usize, (u64, usize)>,
    pushed: usize,
    first: Option<Violation>,
}

impl StreamingScMonitor {
    /// A fresh monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one event; returns a violation witness (push indices) if
    /// the process's previous operation returned a larger value.
    pub fn push(&mut self, ev: &OpEvent) -> Option<Violation> {
        let id = self.pushed;
        self.pushed += 1;
        let verdict = match self.prev.insert(ev.process, (ev.value, id)) {
            Some((pv, pid)) if pv > ev.value => Some(Violation { earlier: pid, later: id }),
            _ => None,
        };
        if let Some(v) = verdict {
            self.first.get_or_insert(v);
        }
        verdict
    }

    /// The first violation witnessed, if any (push indices).
    pub fn first_violation(&self) -> Option<Violation> {
        self.first
    }

    /// Whether no violation has been witnessed so far.
    pub fn is_sequentially_consistent(&self) -> bool {
        self.first.is_none()
    }

    /// Events consumed so far.
    pub fn operations(&self) -> usize {
        self.pushed
    }
}

impl OpSink for StreamingScMonitor {
    fn record(&mut self, ev: OpEvent) {
        let _ = self.push(&ev);
    }
}

/// Per-event verdicts from [`StreamingFractionMeter::push`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventFlags {
    /// Some completed operation with a larger value completely precedes
    /// this one (the Section 5.1 non-linearizable-token predicate).
    pub non_linearizable: bool,
    /// Some earlier operation *of the same process* returned a larger
    /// value (the non-sequentially-consistent-token predicate).
    pub non_sequentially_consistent: bool,
}

/// Online Section 5.1 inconsistency-fraction meter.
///
/// Feed in nondecreasing enter order (like [`StreamingLinMonitor`]);
/// `O(log n)` amortized per event, memory bounded by concurrency. Each
/// push classifies that operation immediately, so running fractions are
/// available at any instant of a live run.
///
/// # Example
///
/// ```
/// use cnet_core::op::op;
/// use cnet_core::trace::StreamingFractionMeter;
///
/// let mut meter = StreamingFractionMeter::new();
/// meter.push(&op(0, 0.0, 1.0, 5));
/// let flags = meter.push(&op(1, 2.0, 3.0, 1));
/// assert!(flags.non_linearizable && !flags.non_sequentially_consistent);
/// assert_eq!(meter.f_nl(), 0.5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct StreamingFractionMeter {
    pending: BinaryHeap<Reverse<Pending>>,
    max_finished_value: Option<u64>,
    /// Per process: the running maximum value it has obtained.
    process_max: HashMap<usize, u64>,
    last_enter: Option<(u64, usize)>,
    total: usize,
    non_linearizable: usize,
    non_sequentially_consistent: usize,
}

impl StreamingFractionMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one event and classifies it.
    ///
    /// # Panics
    ///
    /// Panics if events arrive out of enter order.
    pub fn push(&mut self, ev: &OpEvent) -> EventFlags {
        let key = ev.enter_key();
        assert!(
            self.last_enter.is_none_or(|k| k <= key),
            "StreamingFractionMeter: events must arrive in nondecreasing enter order"
        );
        self.last_enter = Some(key);
        let arrival = self.total;
        self.total += 1;
        while let Some(&Reverse(top)) = self.pending.peek() {
            if (top.exit_ns, top.exit_seq) < key {
                self.pending.pop();
                self.max_finished_value =
                    Some(self.max_finished_value.map_or(top.value, |m| m.max(top.value)));
            } else {
                break;
            }
        }
        let non_linearizable = self.max_finished_value.is_some_and(|m| m > ev.value);
        let non_sequentially_consistent = match self.process_max.get_mut(&ev.process) {
            None => {
                self.process_max.insert(ev.process, ev.value);
                false
            }
            Some(max) => {
                let bad = *max > ev.value;
                *max = (*max).max(ev.value);
                bad
            }
        };
        self.non_linearizable += usize::from(non_linearizable);
        self.non_sequentially_consistent += usize::from(non_sequentially_consistent);
        self.pending.push(Reverse(Pending {
            exit_ns: ev.exit_ns,
            exit_seq: ev.exit_seq,
            arrival,
            value: ev.value,
        }));
        EventFlags { non_linearizable, non_sequentially_consistent }
    }

    /// Events consumed so far.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Non-linearizable operations seen so far.
    pub fn non_linearizable(&self) -> usize {
        self.non_linearizable
    }

    /// Non-sequentially-consistent operations seen so far.
    pub fn non_sequentially_consistent(&self) -> usize {
        self.non_sequentially_consistent
    }

    /// The running non-linearizability fraction. An empty (or, trivially,
    /// single-op) trace has no inconsistent operations, so the fraction is
    /// exactly `0.0` — never `NaN` from a `0/0`.
    pub fn f_nl(&self) -> f64 {
        match self.total {
            0 => 0.0,
            n => self.non_linearizable as f64 / n as f64,
        }
    }

    /// The running non-sequential-consistency fraction. Same contract as
    /// [`Self::f_nl`]: `0.0` (not `NaN`) on an empty or single-op trace.
    pub fn f_nsc(&self) -> f64 {
        match self.total {
            0 => 0.0,
            n => self.non_sequentially_consistent as f64 / n as f64,
        }
    }
}

impl OpSink for StreamingFractionMeter {
    fn record(&mut self, ev: OpEvent) {
        let _ = self.push(&ev);
    }
}

/// Online quantitative-quiescent-consistency meter (Jagadeesan–Riely,
/// arXiv 1402.4043), specialized to counting.
///
/// Where [`StreamingFractionMeter`] reports the *fraction* of operations
/// carrying the Section 5.1 non-linearizable flag, this meter reports the
/// *magnitude* behind each flag. The quiescent order of a counting history
/// is the order of returned values, so an operation's displacement from it
/// is its **lateness**:
///
/// > `lateness(o)` = number of operations that completely precede `o`
/// > (finished before `o` entered) yet returned a *larger* value.
///
/// An operation is non-linearizable in the Section 5.1 sense iff its
/// lateness is nonzero, so a linearizable stream measures `qqc_max == 0`
/// exactly; a relaxed backend measures a bounded, nonzero distribution
/// rather than a clean/violation bit. The meter tracks the maximum, mean,
/// and p99 of the per-op lateness distribution.
///
/// Feed in nondecreasing enter order (same contract as the other
/// monitors). Each push costs `O(log n + lateness)`: finished values below
/// the dense "floor" (counting histories hand out every value exactly
/// once, so the finished set is eventually an interval) are compacted to a
/// single integer, and only the sparse out-of-order suffix is kept in a
/// tree.
#[derive(Clone, Debug, Default)]
pub struct StreamingQqcMeter {
    pending: BinaryHeap<Reverse<Pending>>,
    /// Every value `< floor` has finished exactly once (interval
    /// compaction of the dense prefix).
    floor: u64,
    /// Finished values not covered by the floor interval: out-of-order
    /// values `>= floor`, plus duplicate finishes of compacted values.
    above: BTreeMap<u64, u64>,
    last_enter: Option<(u64, usize)>,
    total: usize,
    late: usize,
    max: u64,
    sum: u128,
    hist: LatencyHistogram,
}

impl StreamingQqcMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks one value as finished (its operation retired from the
    /// pending set).
    fn finish(&mut self, v: u64) {
        if v != self.floor {
            *self.above.entry(v).or_insert(0) += 1;
            return;
        }
        self.floor += 1;
        while let Some(&c) = self.above.get(&self.floor) {
            self.above.remove(&self.floor);
            if c > 1 {
                // The extra finishes are duplicates of a now-compacted
                // value; keep them as explicit entries below the floor.
                self.above.insert(self.floor, c - 1);
            }
            self.floor += 1;
        }
    }

    /// Finished operations with a value strictly greater than `v`.
    fn finished_greater(&self, v: u64) -> u64 {
        let interval = if v < self.floor { self.floor - 1 - v } else { 0 };
        let sparse: u64 = self.above.range((Excluded(v), Unbounded)).map(|(_, c)| c).sum();
        interval + sparse
    }

    /// Consumes one event and returns its lateness.
    ///
    /// # Panics
    ///
    /// Panics if events arrive out of enter order.
    pub fn push(&mut self, ev: &OpEvent) -> u64 {
        let key = ev.enter_key();
        assert!(
            self.last_enter.is_none_or(|k| k <= key),
            "StreamingQqcMeter: events must arrive in nondecreasing enter order"
        );
        self.last_enter = Some(key);
        while let Some(&Reverse(top)) = self.pending.peek() {
            if (top.exit_ns, top.exit_seq) < key {
                self.pending.pop();
                self.finish(top.value);
            } else {
                break;
            }
        }
        let lateness = self.finished_greater(ev.value);
        self.total += 1;
        self.late += usize::from(lateness > 0);
        self.max = self.max.max(lateness);
        self.sum += lateness as u128;
        self.hist.record(lateness);
        self.pending.push(Reverse(Pending {
            exit_ns: ev.exit_ns,
            exit_seq: ev.exit_seq,
            arrival: self.total - 1,
            value: ev.value,
        }));
        lateness
    }

    /// Events consumed so far.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Operations with nonzero lateness (equals the fraction meter's
    /// non-linearizable count on the same stream).
    pub fn late_ops(&self) -> usize {
        self.late
    }

    /// Maximum lateness observed (0 on an empty or linearizable stream).
    pub fn qqc_max(&self) -> u64 {
        self.max
    }

    /// Mean lateness. `0.0` (never `NaN`) on an empty stream — same edge
    /// contract as [`StreamingFractionMeter::f_nl`].
    pub fn qqc_mean(&self) -> f64 {
        match self.total {
            0 => 0.0,
            n => self.sum as f64 / n as f64,
        }
    }

    /// The 99th-percentile lateness (0 on an empty stream). Values below
    /// 32 are exact; larger ones carry the histogram's ~3.1% bucket error.
    pub fn qqc_p99(&self) -> u64 {
        self.hist.quantile(0.99)
    }
}

impl OpSink for StreamingQqcMeter {
    fn record(&mut self, ev: OpEvent) {
        let _ = self.push(&ev);
    }
}

/// All four monitors behind one push: verdicts, witnesses, running
/// fractions, and the QQC lateness distribution for a live stream. Feed in
/// nondecreasing enter order, with each process's events in program order
/// (a live trace satisfies both).
#[derive(Clone, Debug, Default)]
pub struct StreamingAuditor {
    lin: StreamingLinMonitor,
    sc: StreamingScMonitor,
    meter: StreamingFractionMeter,
    qqc: StreamingQqcMeter,
}

impl StreamingAuditor {
    /// A fresh auditor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one event through all four monitors.
    pub fn push(&mut self, ev: &OpEvent) -> EventFlags {
        let _ = self.lin.push(ev);
        let _ = self.sc.push(ev);
        let _ = self.qqc.push(ev);
        self.meter.push(ev)
    }

    /// Events consumed so far.
    pub fn operations(&self) -> usize {
        self.meter.total()
    }

    /// Whether no linearizability violation has been witnessed.
    pub fn is_linearizable(&self) -> bool {
        self.lin.is_linearizable()
    }

    /// Whether no sequential-consistency violation has been witnessed.
    pub fn is_sequentially_consistent(&self) -> bool {
        self.sc.is_sequentially_consistent()
    }

    /// First linearizability-violation witness (push indices), if any.
    pub fn linearizability_violation(&self) -> Option<Violation> {
        self.lin.first_violation()
    }

    /// First sequential-consistency-violation witness (push indices), if
    /// any.
    pub fn sequential_consistency_violation(&self) -> Option<Violation> {
        self.sc.first_violation()
    }

    /// Non-linearizable operations seen so far.
    pub fn non_linearizable(&self) -> usize {
        self.meter.non_linearizable()
    }

    /// Non-sequentially-consistent operations seen so far.
    pub fn non_sequentially_consistent(&self) -> usize {
        self.meter.non_sequentially_consistent()
    }

    /// The running non-linearizability fraction.
    pub fn f_nl(&self) -> f64 {
        self.meter.f_nl()
    }

    /// The running non-sequential-consistency fraction.
    pub fn f_nsc(&self) -> f64 {
        self.meter.f_nsc()
    }

    /// Maximum QQC lateness observed (0 iff the stream is linearizable in
    /// the Section 5.1 per-op sense).
    pub fn qqc_max(&self) -> u64 {
        self.qqc.qqc_max()
    }

    /// Mean QQC lateness (0.0 on an empty stream).
    pub fn qqc_mean(&self) -> f64 {
        self.qqc.qqc_mean()
    }

    /// 99th-percentile QQC lateness.
    pub fn qqc_p99(&self) -> u64 {
        self.qqc.qqc_p99()
    }

    /// Whether the stream so far is both linearizable and sequentially
    /// consistent — the "clean" verdict every audit surface (the `cnet
    /// audit` command, the networked `CounterServer`, `verify.sh`'s smoke)
    /// reports.
    pub fn is_clean(&self) -> bool {
        self.is_linearizable() && self.is_sequentially_consistent()
    }

    /// One-line human-readable verdict: operation count, violation counts,
    /// and the running fractions — the shared rendering for audit verdicts
    /// across the CLI and the network service layer.
    pub fn summary(&self) -> String {
        format!(
            "{} ops audited: non-linearizable {} (F_nl={:.4}), non-SC {} (F_nsc={:.4}), \
             qqc max {} mean {:.2} p99 {} — {}",
            self.operations(),
            self.non_linearizable(),
            self.f_nl(),
            self.non_sequentially_consistent(),
            self.f_nsc(),
            self.qqc_max(),
            self.qqc_mean(),
            self.qqc_p99(),
            if self.is_clean() { "clean" } else { "violations detected" }
        )
    }
}

impl OpSink for StreamingAuditor {
    fn record(&mut self, ev: OpEvent) {
        let _ = self.push(&ev);
    }
}

/// A raw timestamped operation from one recorder shard, before global
/// sequence numbers exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawOp {
    /// The process that performed the operation.
    pub process: usize,
    /// Monotonic nanoseconds at operation start.
    pub enter_ns: u64,
    /// Monotonic nanoseconds at operation completion.
    pub exit_ns: u64,
    /// The value obtained.
    pub value: u64,
}

/// Exit sequence numbers start here so that an enter and an exit in the
/// same nanosecond compare as *overlapping*: with `exit_seq = GUARD + k`
/// and `enter_seq = k'` (both `k, k' < GUARD`), a tied
/// `(ns, exit_seq) < (ns, enter_seq)` is impossible, so a tie never
/// fabricates a complete-precedence edge the clock cannot certify.
const EXIT_SEQ_GUARD: usize = usize::MAX / 2;

#[derive(Clone, Debug, Default)]
struct MergeShard {
    buf: VecDeque<RawOp>,
    /// Enter time of the last event pushed (future events are ≥ this).
    watermark: Option<u64>,
    finished: bool,
}

/// Merges per-shard event streams — each internally ordered by enter time,
/// as any single thread's operations are — into one globally enter-ordered
/// [`OpEvent`] stream for the monitors.
///
/// A buffered event is released once its enter time is at or below every
/// unfinished shard's **watermark** (the enter time of that shard's latest
/// event): no straggler can then precede it. Sequence numbers are assigned
/// at release, with [`EXIT_SEQ_GUARD`]'s conservative tie rule.
///
/// # Example
///
/// ```
/// use cnet_core::trace::{EventMerger, RawOp};
///
/// let mut m = EventMerger::new(2);
/// m.push(0, RawOp { process: 0, enter_ns: 10, exit_ns: 20, value: 0 });
/// m.push(1, RawOp { process: 1, enter_ns: 5, exit_ns: 15, value: 1 });
/// let mut out = Vec::new();
/// m.drain_into(&mut out);
/// m.finish(0);
/// m.finish(1);
/// m.drain_into(&mut out);
/// let enters: Vec<u64> = out.iter().map(|e| e.enter_ns).collect();
/// assert_eq!(enters, vec![5, 10]); // globally enter-ordered
/// ```
#[derive(Clone, Debug)]
pub struct EventMerger {
    shards: Vec<MergeShard>,
    emitted: usize,
}

impl EventMerger {
    /// A merger over `shards` input streams.
    pub fn new(shards: usize) -> Self {
        EventMerger { shards: vec![MergeShard::default(); shards], emitted: 0 }
    }

    /// Appends one raw event to a shard's stream.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range, the shard is finished, or enter
    /// times regress within the shard.
    pub fn push(&mut self, shard: usize, op: RawOp) {
        let s = &mut self.shards[shard];
        assert!(!s.finished, "EventMerger: push after finish on shard {shard}");
        assert!(
            s.watermark.is_none_or(|w| w <= op.enter_ns),
            "EventMerger: enter times regressed within shard {shard}"
        );
        s.watermark = Some(op.enter_ns);
        s.buf.push_back(op);
    }

    /// Declares a shard's stream complete (it no longer constrains
    /// release).
    pub fn finish(&mut self, shard: usize) {
        self.shards[shard].finished = true;
    }

    /// Events released so far over the merger's lifetime.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Events currently buffered awaiting release.
    pub fn buffered(&self) -> usize {
        self.shards.iter().map(|s| s.buf.len()).sum()
    }

    /// Releases every event no straggler can precede, in enter order, into
    /// `sink`; returns how many were released. After every shard is
    /// [`finish`](Self::finish)ed, one more drain flushes everything.
    pub fn drain_into(&mut self, sink: &mut impl OpSink) -> usize {
        // The release threshold: the least watermark over unfinished
        // shards. An unfinished shard that has produced nothing yet blocks
        // all release (its first event could be arbitrarily early).
        let mut threshold = u64::MAX;
        for s in &self.shards {
            if !s.finished {
                match s.watermark {
                    Some(w) => threshold = threshold.min(w),
                    None => return 0,
                }
            }
        }
        let mut released = 0;
        loop {
            // The earliest buffered front (ties: lowest shard index).
            let mut best: Option<(u64, usize)> = None;
            for (i, s) in self.shards.iter().enumerate() {
                if let Some(front) = s.buf.front() {
                    if best.is_none_or(|(e, _)| front.enter_ns < e) {
                        best = Some((front.enter_ns, i));
                    }
                }
            }
            let Some((enter, shard)) = best else { break };
            if enter > threshold {
                break;
            }
            let op = self.shards[shard].buf.pop_front().expect("front observed above");
            let k = self.emitted;
            self.emitted += 1;
            sink.record(OpEvent {
                process: op.process,
                enter_ns: op.enter_ns,
                enter_seq: k,
                exit_ns: op.exit_ns,
                exit_seq: EXIT_SEQ_GUARD + k,
                value: op.value,
            });
            released += 1;
        }
        released
    }
}

/// Local QQC bookkeeping for one shard: the same floor-compaction trick as
/// [`StreamingQqcMeter`], restricted to the values this shard has seen
/// finish. Because one shard only ever observes a (sparse) subset of the
/// global 0..n value range, the floor rarely advances and most finished
/// values live in the sparse tree — that is fine: the shard verdict is a
/// *candidate* (sound lower bound), the exact distribution comes from the
/// [`MergeAuditor`]'s global pass.
#[derive(Clone, Debug, Default)]
struct ShardQqc {
    floor: u64,
    above: BTreeMap<u64, u64>,
}

impl ShardQqc {
    fn finish(&mut self, v: u64) {
        if v != self.floor {
            *self.above.entry(v).or_insert(0) += 1;
            return;
        }
        self.floor += 1;
        while let Some(&c) = self.above.get(&self.floor) {
            self.above.remove(&self.floor);
            if c > 1 {
                self.above.insert(self.floor, c - 1);
            }
            self.floor += 1;
        }
    }

    fn finished_greater(&self, v: u64) -> u64 {
        let interval = if v < self.floor { self.floor - 1 - v } else { 0 };
        let sparse: u64 = self.above.range((Excluded(v), Unbounded)).map(|(_, c)| c).sum();
        interval + sparse
    }
}

/// One shard's contribution to a merged audit: its buffered events (still
/// raw — no global sequence numbers yet), its release watermark, and the
/// partial verdict its [`ShardMonitor`] computed locally. This is the unit
/// a cluster node ships over the wire (instead of raw stamps alone) and
/// the unit an audit worker hands to the [`MergeAuditor`] at an epoch
/// boundary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardFrontier {
    /// The (merger-)shard index these events belong to.
    pub shard: usize,
    /// Buffered events in shard order (nondecreasing `enter_ns`).
    pub ops: Vec<RawOp>,
    /// Enter time of the shard's latest event, if any: future events from
    /// this shard are at or after this instant.
    pub watermark: Option<u64>,
    /// Whether the shard's stream is complete (no further events).
    pub finished: bool,
    /// Events this shard's recorder ring lost to overflow.
    pub dropped: u64,
    /// Events deliberately not recorded by the 1-in-k sampling mode (they
    /// widen neighbouring intervals instead; see the recorder docs).
    pub skipped: u64,
    /// Locally witnessed non-linearizable events (sound lower bound: a
    /// precedence inside one shard is a genuine real-time precedence).
    pub candidate_non_lin: usize,
    /// Locally witnessed per-process value inversions. When sharding is
    /// per process — the recorder's layout — this is *exact*, not a bound.
    pub non_sc: usize,
    /// The shard's local QQC floor: every value below it has been seen
    /// finishing on this shard.
    pub qqc_floor: u64,
    /// Largest locally witnessed QQC lateness (sound lower bound on the
    /// global `qqc_max`).
    pub candidate_qqc_max: u64,
}

/// The per-shard half of the parallel audit pipeline: consumes one
/// recorder ring shard **in place** (no global k-way merge on the hot
/// path) and maintains a local partial verdict — local SC order, candidate
/// linearizability inversions, a local QQC floor — while buffering the
/// events for the lazy global merge.
///
/// Soundness of the partial verdict: operations recorded on one shard are
/// in genuine program/real-time order, so any inversion witnessed locally
/// is a real violation of the global history too (the converse is not
/// true — cross-shard inversions only show up in the [`MergeAuditor`]'s
/// exact pass). With the recorder's one-shard-per-process layout the SC
/// count is exact, because sequential consistency only constrains
/// per-process order.
///
/// # Example
///
/// ```
/// use cnet_core::trace::{MergeAuditor, RawOp, ShardMonitor};
///
/// let mut mon = ShardMonitor::new(0);
/// mon.observe(RawOp { process: 0, enter_ns: 0, exit_ns: 1, value: 5 });
/// mon.observe(RawOp { process: 0, enter_ns: 2, exit_ns: 3, value: 1 });
/// let f = mon.take_frontier(false);
/// assert_eq!(f.candidate_non_lin, 1); // 5 finished before 1 entered
/// assert_eq!(f.non_sc, 1); // same process, value decreased
/// let mut merged = MergeAuditor::new(1);
/// merged.ingest(f);
/// ```
#[derive(Clone, Debug)]
pub struct ShardMonitor {
    shard: usize,
    ops: Vec<RawOp>,
    watermark: Option<u64>,
    dropped: u64,
    skipped: u64,
    /// Locally pending ops: `(exit_ns, value)` min-heap, popped as later
    /// ops enter.
    pending: BinaryHeap<Reverse<(u64, u64)>>,
    candidate_non_lin: usize,
    /// Per process: the previous value observed (adjacent-pair SC check).
    prev: HashMap<usize, u64>,
    non_sc: usize,
    qqc: ShardQqc,
    candidate_qqc_max: u64,
    observed: usize,
}

impl ShardMonitor {
    /// A fresh monitor for (merger-)shard `shard`.
    pub fn new(shard: usize) -> ShardMonitor {
        ShardMonitor {
            shard,
            ops: Vec::new(),
            watermark: None,
            dropped: 0,
            skipped: 0,
            pending: BinaryHeap::new(),
            candidate_non_lin: 0,
            prev: HashMap::new(),
            non_sc: 0,
            qqc: ShardQqc::default(),
            candidate_qqc_max: 0,
            observed: 0,
        }
    }

    /// The shard index this monitor consumes.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Events observed over the monitor's lifetime.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Events currently buffered for the next frontier.
    pub fn buffered(&self) -> usize {
        self.ops.len()
    }

    /// Consumes one raw event from the shard's stream. Enter times that
    /// regress within the stream (impossible from the recorder, possible
    /// from a hostile or buggy wire peer) are clamped up to the watermark —
    /// a pure widening, so no precedence is ever fabricated by the repair.
    pub fn observe(&mut self, op: RawOp) {
        let enter_ns = op.enter_ns.max(self.watermark.unwrap_or(0));
        let exit_ns = op.exit_ns.max(enter_ns);
        let op = RawOp { enter_ns, exit_ns, ..op };
        self.watermark = Some(enter_ns);
        self.observed += 1;
        // Local partial verdict: pop locally finished ops (strictly earlier
        // exits only — a tie reads as overlap, same rule as the merger).
        while let Some(&Reverse((exit, value))) = self.pending.peek() {
            if exit < enter_ns {
                self.pending.pop();
                self.qqc.finish(value);
            } else {
                break;
            }
        }
        let late = self.qqc.finished_greater(op.value);
        if late > 0 {
            self.candidate_non_lin += 1;
            self.candidate_qqc_max = self.candidate_qqc_max.max(late);
        }
        match self.prev.insert(op.process, op.value) {
            Some(pv) if pv > op.value => self.non_sc += 1,
            _ => {}
        }
        self.pending.push(Reverse((exit_ns, op.value)));
        self.ops.push(op);
    }

    /// Account `n` events lost to ring overflow on this shard.
    pub fn add_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    /// Account `n` events skipped by the sampling mode on this shard.
    pub fn add_skipped(&mut self, n: u64) {
        self.skipped += n;
    }

    /// Takes the current frontier: buffered events move out, the partial
    /// verdict (counts, watermark, drop/skip accounting) is *carried* —
    /// each frontier reports lifetime totals, so the latest frontier wins
    /// when the [`MergeAuditor`] folds them in.
    pub fn take_frontier(&mut self, finished: bool) -> ShardFrontier {
        ShardFrontier {
            shard: self.shard,
            ops: std::mem::take(&mut self.ops),
            watermark: self.watermark,
            finished,
            dropped: self.dropped,
            skipped: self.skipped,
            candidate_non_lin: self.candidate_non_lin,
            non_sc: self.non_sc,
            qqc_floor: self.qqc.floor,
            candidate_qqc_max: self.candidate_qqc_max,
        }
    }
}

/// Per-shard lifetime totals as folded into a [`MergeAuditor`] (latest
/// frontier wins — frontiers report running totals, not deltas).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Events ingested from this shard.
    pub observed: usize,
    /// Events the shard's ring dropped on overflow.
    pub dropped: u64,
    /// Events the sampling mode skipped on this shard.
    pub skipped: u64,
    /// The shard's locally witnessed non-linearizable count (lower bound).
    pub candidate_non_lin: usize,
    /// The shard's locally witnessed SC inversions.
    pub non_sc: usize,
    /// The shard's local QQC floor.
    pub qqc_floor: u64,
    /// Largest locally witnessed QQC lateness.
    pub candidate_qqc_max: u64,
}

/// The lazy half of the parallel audit pipeline: folds [`ShardFrontier`]s
/// (or direct per-shard event streams) into one exact global verdict.
///
/// Internally this is exactly the sequential pipeline — an [`EventMerger`]
/// feeding a [`StreamingAuditor`] — so the verdict is **bit-identical** to
/// what the sequential auditor produces on the same per-shard streams: the
/// merger's release rule is deterministic in the stream contents (the
/// earliest front is released first, ties by shard index, sequence numbers
/// assigned at release), independent of how pushes and drains interleave
/// in time. Shards merge only at epoch boundaries ([`ingest`](Self::ingest)
/// / [`merge`](Self::merge)) and on [`summary`](Self::summary) — never on
/// the recording hot path. The watermark rule is the merger's: an event is
/// released once every unfinished shard's frontier has advanced past its
/// enter time (watermark = min enter stamp of the latest event across
/// shards), so no straggler can precede it.
#[derive(Clone, Debug)]
pub struct MergeAuditor {
    merger: EventMerger,
    auditor: StreamingAuditor,
    stats: Vec<ShardStats>,
}

impl MergeAuditor {
    /// A merged auditor over `shards` input streams.
    pub fn new(shards: usize) -> MergeAuditor {
        MergeAuditor {
            merger: EventMerger::new(shards),
            auditor: StreamingAuditor::new(),
            stats: vec![ShardStats::default(); shards],
        }
    }

    /// The number of input shards.
    pub fn shard_count(&self) -> usize {
        self.stats.len()
    }

    /// Folds one shard frontier in: its buffered events join the merge
    /// (with the same regression clamp as [`ShardMonitor::observe`]), its
    /// lifetime totals replace the shard's stats, and every event that has
    /// become safe is released into the auditor.
    ///
    /// # Panics
    ///
    /// Panics if `frontier.shard` is out of range.
    pub fn ingest(&mut self, frontier: ShardFrontier) -> usize {
        let shard = frontier.shard;
        for op in frontier.ops {
            self.push(shard, op);
        }
        let st = &mut self.stats[shard];
        st.dropped = frontier.dropped;
        st.skipped = frontier.skipped;
        st.candidate_non_lin = frontier.candidate_non_lin;
        st.non_sc = frontier.non_sc;
        st.qqc_floor = frontier.qqc_floor;
        st.candidate_qqc_max = frontier.candidate_qqc_max;
        if frontier.finished {
            self.merger.finish(shard);
        }
        self.merge()
    }

    /// Appends one raw event to a shard's stream (regressing enter times
    /// are clamped up, a pure widening). Does not merge; call
    /// [`merge`](Self::merge) at the epoch boundary.
    pub fn push(&mut self, shard: usize, op: RawOp) {
        let floor = self.merger.shards[shard].watermark.unwrap_or(0);
        let enter_ns = op.enter_ns.max(floor);
        let exit_ns = op.exit_ns.max(enter_ns);
        self.stats[shard].observed += 1;
        self.merger.push(shard, RawOp { enter_ns, exit_ns, ..op });
    }

    /// Declares a shard's stream complete.
    pub fn finish_shard(&mut self, shard: usize) {
        self.merger.finish(shard);
    }

    /// Releases every event no straggler can precede into the auditor;
    /// returns how many were released.
    pub fn merge(&mut self) -> usize {
        self.merger.drain_into(&mut self.auditor)
    }

    /// Events still buffered awaiting a watermark advance.
    pub fn buffered(&self) -> usize {
        self.merger.buffered()
    }

    /// The exact global auditor (events merged so far).
    pub fn auditor(&self) -> &StreamingAuditor {
        &self.auditor
    }

    /// Per-shard lifetime totals.
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// Total ring-overflow drops across shards.
    pub fn dropped(&self) -> u64 {
        self.stats.iter().map(|s| s.dropped).sum()
    }

    /// Total sampling skips across shards.
    pub fn skipped(&self) -> u64 {
        self.stats.iter().map(|s| s.skipped).sum()
    }

    /// Events the exact auditor has consumed.
    pub fn operations(&self) -> usize {
        self.auditor.operations()
    }

    /// Whether the merged history so far is clean (both linearizable and
    /// sequentially consistent).
    pub fn is_clean(&self) -> bool {
        self.auditor.is_clean()
    }

    /// Merges everything releasable, then renders the sequential auditor's
    /// one-line verdict — byte-for-byte the string the sequential pipeline
    /// would print on the same streams.
    pub fn summary(&mut self) -> String {
        self.merge();
        self.auditor.summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::{find_linearizability_violation, is_linearizable};
    use crate::op::op;

    #[test]
    fn lin_monitor_matches_batch_on_a_violating_history() {
        let ops =
            vec![op(0, 0.0, 1.0, 5), op(0, 2.0, 3.0, 6), op(1, 4.0, 5.0, 1), op(1, 6.0, 7.0, 2)];
        let mut mon = StreamingLinMonitor::new();
        let mut first = None;
        for o in &ops {
            if let Some(v) = mon.push(o) {
                first.get_or_insert(v);
            }
        }
        let batch = find_linearizability_violation(&ops).unwrap();
        let streamed = first.unwrap();
        // Ops are already enter-ordered, so push indices == slice indices.
        assert_eq!(streamed, batch);
        assert_eq!(mon.first_violation(), Some(streamed));
        assert!(!mon.is_linearizable());
    }

    #[test]
    fn lin_monitor_accepts_consistent_streams() {
        let mut mon = StreamingLinMonitor::new();
        for k in 0..100u64 {
            let o = op(k as usize % 3, k as f64, k as f64 + 0.5, k);
            assert!(mon.push(&o).is_none(), "op {k}");
        }
        assert!(mon.is_linearizable());
        assert_eq!(mon.operations(), 100);
    }

    #[test]
    fn lin_monitor_memory_is_bounded_by_concurrency() {
        // Sequential (non-overlapping) ops: the pending heap drains as fast
        // as it fills, never holding more than one element... plus the one
        // just pushed.
        let mut mon = StreamingLinMonitor::new();
        for k in 0..10_000u64 {
            mon.push(&op(0, 2.0 * k as f64, 2.0 * k as f64 + 1.0, k));
            assert!(mon.pending_len() <= 2, "at op {k}: {}", mon.pending_len());
        }
    }

    #[test]
    #[should_panic(expected = "nondecreasing enter order")]
    fn lin_monitor_rejects_out_of_order_feeds() {
        let mut mon = StreamingLinMonitor::new();
        mon.push(&op(0, 5.0, 6.0, 0));
        mon.push(&op(0, 1.0, 2.0, 1));
    }

    #[test]
    fn sc_monitor_tracks_adjacent_pairs_per_process() {
        let mut mon = StreamingScMonitor::new();
        assert!(mon.push(&op(0, 0.0, 1.0, 5)).is_none());
        assert!(mon.push(&op(1, 0.5, 1.5, 0)).is_none());
        let v = mon.push(&op(0, 2.0, 3.0, 3)).unwrap();
        assert_eq!((v.earlier, v.later), (0, 2));
        // After a decrease, a further increase past the *previous* (not
        // maximal) value is fine — adjacent-pair semantics.
        assert!(mon.push(&op(0, 4.0, 5.0, 4)).is_none());
        assert!(!mon.is_sequentially_consistent());
        assert_eq!(mon.first_violation(), Some(v));
    }

    #[test]
    fn fraction_meter_matches_batch_fractions() {
        use crate::fractions::{non_linearizable_ops, non_sequentially_consistent_ops};
        let ops = vec![
            op(0, 0.0, 1.0, 5),
            op(0, 2.0, 3.0, 2), // non-SC and non-lin
            op(1, 4.0, 5.0, 3), // non-lin only
        ];
        let mut meter = StreamingFractionMeter::new();
        let flags: Vec<EventFlags> = ops.iter().map(|o| meter.push(o)).collect();
        assert!(!flags[0].non_linearizable);
        assert!(flags[1].non_linearizable && flags[1].non_sequentially_consistent);
        assert!(flags[2].non_linearizable && !flags[2].non_sequentially_consistent);
        assert_eq!(meter.non_linearizable(), non_linearizable_ops(&ops).len());
        assert_eq!(
            meter.non_sequentially_consistent(),
            non_sequentially_consistent_ops(&ops).len()
        );
        assert_eq!(meter.f_nl(), 2.0 / 3.0);
        assert_eq!(meter.f_nsc(), 1.0 / 3.0);
    }

    #[test]
    fn auditor_combines_all_three() {
        let mut aud = StreamingAuditor::new();
        aud.push(&op(0, 0.0, 1.0, 5));
        aud.push(&op(0, 2.0, 3.0, 2));
        assert_eq!(aud.operations(), 2);
        assert!(!aud.is_linearizable());
        assert!(!aud.is_sequentially_consistent());
        assert!(aud.linearizability_violation().is_some());
        assert!(aud.sequential_consistency_violation().is_some());
        assert_eq!(aud.non_linearizable(), 1);
        assert_eq!(aud.f_nsc(), 0.5);
    }

    #[test]
    fn fraction_meter_is_zero_not_nan_on_empty_and_single_op_traces() {
        // Satellite pin: the edge contract is an explicit 0.0, so a
        // regression back to a bare 0/0 division (NaN) cannot land
        // silently. NaN != NaN, so assert_eq alone would not catch a
        // comparison rewrite — check finiteness too.
        let mut meter = StreamingFractionMeter::new();
        assert_eq!(meter.f_nl(), 0.0);
        assert_eq!(meter.f_nsc(), 0.0);
        assert!(meter.f_nl().is_finite() && meter.f_nsc().is_finite());
        meter.push(&op(0, 0.0, 1.0, 0));
        assert_eq!(meter.f_nl(), 0.0);
        assert_eq!(meter.f_nsc(), 0.0);
        let mut qqc = StreamingQqcMeter::new();
        assert_eq!(qqc.qqc_mean(), 0.0);
        assert!(qqc.qqc_mean().is_finite());
        assert_eq!(qqc.qqc_max(), 0);
        assert_eq!(qqc.qqc_p99(), 0);
        qqc.push(&op(0, 0.0, 1.0, 0));
        assert_eq!(qqc.qqc_mean(), 0.0);
    }

    #[test]
    fn qqc_meter_is_zero_on_a_linearizable_stream() {
        // Values arrive in enter order with no overtaking: every op's
        // lateness is 0 even though some ops overlap.
        let mut qqc = StreamingQqcMeter::new();
        qqc.push(&op(0, 0.0, 3.0, 0)); // overlaps the next two
        qqc.push(&op(1, 1.0, 2.0, 1));
        qqc.push(&op(1, 4.0, 5.0, 2));
        qqc.push(&op(0, 6.0, 7.0, 3));
        assert_eq!(qqc.total(), 4);
        assert_eq!(qqc.qqc_max(), 0);
        assert_eq!(qqc.late_ops(), 0);
        assert_eq!(qqc.qqc_mean(), 0.0);
    }

    #[test]
    fn qqc_lateness_counts_every_finished_larger_value() {
        // Three ops finish with values 5, 6, 7 before a late op returns 1:
        // its lateness is 3 (the fraction meter would flag it just once).
        let mut qqc = StreamingQqcMeter::new();
        qqc.push(&op(0, 0.0, 1.0, 5));
        qqc.push(&op(1, 0.5, 1.5, 6));
        qqc.push(&op(2, 0.6, 1.6, 7));
        let late = qqc.push(&op(3, 2.0, 3.0, 1));
        assert_eq!(late, 3);
        assert_eq!(qqc.qqc_max(), 3);
        assert_eq!(qqc.late_ops(), 1);
        assert_eq!(qqc.qqc_mean(), 3.0 / 4.0);
        // An overlapping op is not "finished": a larger value whose op is
        // still pending contributes nothing.
        let late = qqc.push(&op(4, 2.5, 4.0, 2));
        assert_eq!(late, 3, "op 3 (value 1) has not finished at enter 2.5");
    }

    #[test]
    fn qqc_meter_agrees_with_the_fraction_meter_flags() {
        // lateness > 0 iff the Section 5.1 non-linearizable flag: check on
        // an interleaved stream with duplicate values.
        let evs = [
            op(0, 0.0, 1.0, 2),
            op(1, 0.5, 2.5, 0),
            op(2, 2.0, 3.0, 1),
            op(0, 4.0, 5.0, 1), // duplicate value, late
            op(1, 6.0, 7.0, 4),
            op(2, 8.0, 9.0, 3),
        ];
        let mut meter = StreamingFractionMeter::new();
        let mut qqc = StreamingQqcMeter::new();
        for ev in &evs {
            let flags = meter.push(ev);
            let late = qqc.push(ev);
            assert_eq!(flags.non_linearizable, late > 0, "{ev:?}");
        }
        assert_eq!(qqc.late_ops(), meter.non_linearizable());
    }

    #[test]
    fn auditor_verdict_and_summary() {
        let mut aud = StreamingAuditor::new();
        aud.push(&op(0, 0.0, 1.0, 0));
        aud.push(&op(0, 2.0, 3.0, 1));
        assert!(aud.is_clean());
        let s = aud.summary();
        assert!(s.contains("2 ops audited"), "{s}");
        assert!(s.ends_with("clean"), "{s}");
        aud.push(&op(1, 4.0, 5.0, 0)); // duplicate value, out of order
        assert!(!aud.is_clean());
        assert!(aud.summary().ends_with("violations detected"));
    }

    #[test]
    fn vec_is_a_sink_and_stream_execution_orders_by_enter() {
        use cnet_sim::engine::run;
        use cnet_sim::workload::{generate, WorkloadConfig};
        use cnet_topology::construct::bitonic;
        let net = bitonic(4).unwrap();
        let cfg = WorkloadConfig {
            processes: 4,
            tokens_per_process: 3,
            c_min: 1.0,
            c_max: 2.0,
            local_delay: 0.0,
            start_spread: 2.0,
        };
        let exec = run(&net, &generate(&net, &cfg, 11)).unwrap();
        let mut events: Vec<OpEvent> = Vec::new();
        let n = stream_execution(&exec, &mut events);
        assert_eq!(n, events.len());
        assert_eq!(n, exec.records().len());
        assert!(events.windows(2).all(|w| w[0].enter_key() <= w[1].enter_key()));
        // Same multiset of values as the batch conversion.
        let mut streamed: Vec<u64> = events.iter().map(|e| e.value).collect();
        let mut batch: Vec<u64> =
            crate::op::Op::from_execution(&exec).iter().map(|o| o.value).collect();
        streamed.sort_unstable();
        batch.sort_unstable();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn merger_orders_interleaved_shards() {
        let mut m = EventMerger::new(3);
        // Shard 2 lags: nothing can be released until it reports.
        m.push(0, RawOp { process: 0, enter_ns: 10, exit_ns: 12, value: 0 });
        m.push(1, RawOp { process: 1, enter_ns: 4, exit_ns: 30, value: 1 });
        let mut out: Vec<OpEvent> = Vec::new();
        assert_eq!(m.drain_into(&mut out), 0);
        m.push(2, RawOp { process: 2, enter_ns: 8, exit_ns: 9, value: 2 });
        // Watermarks now 10/4/8 -> threshold 4: only shard 1's event (enter
        // 4) is safe.
        assert_eq!(m.drain_into(&mut out), 1);
        assert_eq!(out[0].value, 1);
        m.finish(0);
        m.finish(1);
        m.finish(2);
        assert_eq!(m.drain_into(&mut out), 2);
        let enters: Vec<u64> = out.iter().map(|e| e.enter_ns).collect();
        assert_eq!(enters, vec![4, 8, 10]);
        assert_eq!(m.emitted(), 3);
        assert_eq!(m.buffered(), 0);
        // Assigned sequence numbers are the release order.
        assert!(out.iter().enumerate().all(|(k, e)| e.enter_seq == k));
    }

    #[test]
    fn merger_ties_in_one_nanosecond_read_as_overlap() {
        let mut m = EventMerger::new(2);
        // Shard 0's op exits in the same nanosecond shard 1's enters.
        m.push(0, RawOp { process: 0, enter_ns: 5, exit_ns: 10, value: 7 });
        m.push(1, RawOp { process: 1, enter_ns: 10, exit_ns: 11, value: 0 });
        m.finish(0);
        m.finish(1);
        let mut out: Vec<OpEvent> = Vec::new();
        m.drain_into(&mut out);
        assert!(out[0].overlaps(&out[1]), "tied ns must not order the ops");
        // So the value inversion (7 before 0) is NOT a violation.
        assert!(is_linearizable(&out));
    }

    #[test]
    #[should_panic(expected = "regressed within shard")]
    fn merger_rejects_regressing_shard_streams() {
        let mut m = EventMerger::new(1);
        m.push(0, RawOp { process: 0, enter_ns: 10, exit_ns: 12, value: 0 });
        m.push(0, RawOp { process: 0, enter_ns: 3, exit_ns: 4, value: 1 });
    }

    #[test]
    fn merged_stream_feeds_monitors_directly() {
        // Two shards, one genuinely non-linearizable pattern: shard 0's op
        // finishes (value 5) strictly before shard 1's op begins (value 1).
        let mut m = EventMerger::new(2);
        m.push(0, RawOp { process: 0, enter_ns: 0, exit_ns: 10, value: 5 });
        m.push(0, RawOp { process: 0, enter_ns: 40, exit_ns: 50, value: 6 });
        m.push(1, RawOp { process: 1, enter_ns: 20, exit_ns: 30, value: 1 });
        m.finish(0);
        m.finish(1);
        let mut aud = StreamingAuditor::new();
        m.drain_into(&mut aud);
        assert_eq!(aud.operations(), 3);
        assert!(!aud.is_linearizable());
        assert!(aud.is_sequentially_consistent()); // per-process values increase
        assert_eq!(aud.non_linearizable(), 1);
    }

    #[test]
    fn op_event_round_trips_through_json() {
        use cnet_util::json;
        let ev = OpEvent {
            process: 3,
            enter_ns: 250_000_000,
            enter_seq: 42,
            exit_ns: 1_750_000_000,
            exit_seq: 43,
            value: 42,
        };
        let back: OpEvent = json::from_str(&json::to_string(&ev)).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn shard_monitor_partial_verdict_is_local_and_sound() {
        let mut mon = ShardMonitor::new(0);
        // Two ops of process 0 in order, then a genuine local inversion.
        mon.observe(RawOp { process: 0, enter_ns: 0, exit_ns: 10, value: 4 });
        mon.observe(RawOp { process: 0, enter_ns: 20, exit_ns: 30, value: 7 });
        mon.observe(RawOp { process: 0, enter_ns: 40, exit_ns: 50, value: 2 });
        assert_eq!(mon.observed(), 3);
        let f = mon.take_frontier(false);
        assert_eq!(f.candidate_non_lin, 1, "7 finished before 2 entered");
        assert_eq!(f.non_sc, 1, "process 0 decreased");
        assert_eq!(f.watermark, Some(40));
        assert_eq!(f.ops.len(), 3);
        assert!(!f.finished);
        // The buffer moved out; the verdict carries (lifetime totals).
        assert_eq!(mon.buffered(), 0);
        let f2 = mon.take_frontier(true);
        assert_eq!(f2.candidate_non_lin, 1);
        assert!(f2.finished && f2.ops.is_empty());
    }

    #[test]
    fn shard_monitor_tied_stamps_read_as_overlap() {
        // exit == next enter must NOT count as local precedence (the same
        // one-nanosecond rule the merger applies globally).
        let mut mon = ShardMonitor::new(0);
        mon.observe(RawOp { process: 0, enter_ns: 0, exit_ns: 10, value: 9 });
        mon.observe(RawOp { process: 1, enter_ns: 10, exit_ns: 20, value: 0 });
        let f = mon.take_frontier(true);
        assert_eq!(f.candidate_non_lin, 0);
    }

    #[test]
    fn shard_monitor_clamps_regressing_wire_streams() {
        // A hostile/buggy peer sends a regressing enter: the monitor widens
        // instead of panicking, and the repaired stream still merges.
        let mut mon = ShardMonitor::new(0);
        mon.observe(RawOp { process: 0, enter_ns: 50, exit_ns: 60, value: 0 });
        mon.observe(RawOp { process: 0, enter_ns: 10, exit_ns: 20, value: 1 });
        let f = mon.take_frontier(true);
        assert_eq!(f.ops[1].enter_ns, 50, "clamped up to the watermark");
        assert_eq!(f.ops[1].exit_ns, 50, "exit dragged along");
        let mut merged = MergeAuditor::new(1);
        merged.ingest(f);
        assert_eq!(merged.operations(), 2);
        assert!(merged.is_clean());
    }

    #[test]
    fn merge_auditor_verdict_is_bit_identical_to_sequential() {
        // The same two per-shard streams through (a) the sequential
        // EventMerger -> StreamingAuditor pipeline and (b) ShardMonitor
        // frontiers folded into a MergeAuditor, with an interleave-varying
        // epoch structure. Summaries must match byte for byte.
        let s0 = [
            RawOp { process: 0, enter_ns: 0, exit_ns: 10, value: 5 },
            RawOp { process: 0, enter_ns: 12, exit_ns: 18, value: 2 }, // non-SC + non-lin
            RawOp { process: 0, enter_ns: 40, exit_ns: 50, value: 6 },
        ];
        let s1 = [
            RawOp { process: 1, enter_ns: 5, exit_ns: 30, value: 1 },
            RawOp { process: 1, enter_ns: 35, exit_ns: 45, value: 3 },
        ];
        let mut merger = EventMerger::new(2);
        let mut seq = StreamingAuditor::new();
        for op in s0 {
            merger.push(0, op);
        }
        for op in s1 {
            merger.push(1, op);
        }
        merger.finish(0);
        merger.finish(1);
        merger.drain_into(&mut seq);

        let mut m0 = ShardMonitor::new(0);
        let mut m1 = ShardMonitor::new(1);
        let mut merged = MergeAuditor::new(2);
        m0.observe(s0[0]);
        m0.observe(s0[1]);
        merged.ingest(m0.take_frontier(false)); // epoch 1: shard 0 only
        m1.observe(s1[0]);
        merged.ingest(m1.take_frontier(false));
        m0.observe(s0[2]);
        m1.observe(s1[1]);
        merged.ingest(m1.take_frontier(true));
        merged.ingest(m0.take_frontier(true));
        assert_eq!(merged.summary(), seq.summary());
        assert_eq!(merged.operations(), 5);
        assert!(!merged.is_clean());
        // The local candidates are sound: no shard claims more than the
        // exact global count.
        let local: usize =
            merged.shard_stats().iter().map(|s| s.candidate_non_lin).sum();
        assert!(local <= merged.auditor().non_linearizable());
        let local_sc: usize = merged.shard_stats().iter().map(|s| s.non_sc).sum();
        assert_eq!(local_sc, merged.auditor().non_sequentially_consistent());
    }

    #[test]
    fn merge_auditor_tracks_drop_and_skip_accounting() {
        let mut mon = ShardMonitor::new(1);
        mon.observe(RawOp { process: 1, enter_ns: 0, exit_ns: 1, value: 0 });
        mon.add_dropped(3);
        mon.add_skipped(7);
        let mut merged = MergeAuditor::new(2);
        merged.ingest(mon.take_frontier(false));
        // Totals carry, latest frontier wins (no double counting).
        mon.add_skipped(1);
        merged.ingest(mon.take_frontier(true));
        merged.finish_shard(0);
        assert_eq!(merged.dropped(), 3);
        assert_eq!(merged.skipped(), 8);
        assert_eq!(merged.shard_stats()[1].skipped, 8);
        assert_eq!(merged.shard_stats()[0].observed, 0);
    }

    #[test]
    fn secs_to_ns_is_monotone_and_rounds() {
        assert_eq!(secs_to_ns(0.0), 0);
        assert_eq!(secs_to_ns(1.0), 1_000_000_000);
        assert_eq!(secs_to_ns(2.5e-9), 3); // rounds
        assert_eq!(secs_to_ns(-1.0), 0); // clamps
        let mut prev = 0;
        for k in 0..1000 {
            let ns = secs_to_ns(k as f64 * 0.001);
            assert!(ns >= prev);
            prev = ns;
        }
    }
}
