//! Provider-neutral operation records.
//!
//! The consistency checkers reason about *increment operations*: who issued
//! them (a process), when they ran (a real-time interval with a tiebreak),
//! and what value they returned. [`Op`] carries exactly that, so the same
//! checkers apply to simulated executions ([`cnet_sim::TimedExecution`]) and
//! to histories recorded by the threaded runtime in `cnet-runtime`.

use cnet_sim::exec::TimedExecution;
use cnet_util::json_struct;

/// One completed increment operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Op {
    /// The process that issued the operation.
    pub process: usize,
    /// Time of the operation's first step.
    pub enter_time: f64,
    /// Tiebreak for `enter_time` (position in a global event order).
    pub enter_seq: usize,
    /// Time of the operation's last step (when the value was obtained).
    pub exit_time: f64,
    /// Tiebreak for `exit_time`.
    pub exit_seq: usize,
    /// The value returned.
    pub value: u64,
}

json_struct!(Op { process, enter_time, enter_seq, exit_time, exit_seq, value });

impl Op {
    /// Whether this operation **completely precedes** `other`: its last step
    /// comes before the other's first step (ties resolved by sequence
    /// number).
    #[inline]
    pub fn completely_precedes(&self, other: &Op) -> bool {
        (self.exit_time, self.exit_seq) < (other.enter_time, other.enter_seq)
    }

    /// Whether the two operations overlap in time.
    #[inline]
    pub fn overlaps(&self, other: &Op) -> bool {
        !self.completely_precedes(other) && !other.completely_precedes(self)
    }

    /// Converts every token record of a simulated execution into an [`Op`].
    ///
    /// # Example
    ///
    /// ```
    /// use cnet_topology::construct::bitonic;
    /// use cnet_sim::{engine::run, spec::TimedTokenSpec, ids::ProcessId};
    /// use cnet_core::op::Op;
    ///
    /// let net = bitonic(2)?;
    /// let specs = vec![TimedTokenSpec::lock_step(ProcessId(0), 0, 0.0, 1.0, 1)];
    /// let ops = Op::from_execution(&run(&net, &specs)?);
    /// assert_eq!(ops.len(), 1);
    /// assert_eq!(ops[0].value, 0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_execution(exec: &TimedExecution) -> Vec<Op> {
        exec.records()
            .iter()
            .map(|r| Op {
                process: r.process.index(),
                enter_time: r.enter_time,
                enter_seq: r.enter_seq,
                exit_time: r.exit_time,
                exit_seq: r.exit_seq,
                value: r.value,
            })
            .collect()
    }
}

/// Builds an [`Op`] from plain interval data, using the value itself as the
/// tiebreak (adequate when all times are distinct, as in tests and the
/// threaded runtime where timestamps come from a monotonic clock).
pub fn op(process: usize, enter: f64, exit: f64, value: u64) -> Op {
    Op {
        process,
        enter_time: enter,
        enter_seq: value as usize,
        exit_time: exit,
        exit_seq: value as usize,
        value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_and_overlap() {
        let a = op(0, 0.0, 1.0, 0);
        let b = op(1, 2.0, 3.0, 1);
        let c = op(2, 0.5, 2.5, 2);
        assert!(a.completely_precedes(&b));
        assert!(!b.completely_precedes(&a));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
    }

    #[test]
    fn conversion_from_execution_preserves_fields() {
        use cnet_sim::{engine::run, ids::ProcessId, spec::TimedTokenSpec};
        use cnet_topology::construct::bitonic;
        let net = bitonic(2).unwrap();
        let specs = vec![
            TimedTokenSpec::lock_step(ProcessId(7), 1, 2.0, 3.0, 1),
        ];
        let exec = run(&net, &specs).unwrap();
        let ops = Op::from_execution(&exec);
        assert_eq!(ops[0].process, 7);
        assert_eq!(ops[0].enter_time, 2.0);
        assert_eq!(ops[0].exit_time, 5.0);
    }

    #[test]
    fn ops_round_trip_through_json() {
        use cnet_util::json;
        let a = op(3, 0.25, 1.75, 42);
        let back: Op = json::from_str(&json::to_string(&a)).unwrap();
        assert_eq!(a, back);
    }
}
