//! Provider-neutral operation records.
//!
//! The consistency checkers reason about *increment operations*: who issued
//! them (a process), when they ran (an integer-nanosecond interval with a
//! tiebreak), and what value they returned. [`Op`] carries exactly that —
//! it **is** the workspace's shared trace event,
//! [`crate::trace::OpEvent`], re-exported under the checkers' traditional
//! name — so the same checkers apply to simulated executions
//! ([`cnet_sim::TimedExecution`]), to histories recorded by the threaded
//! runtime in `cnet-runtime`, and to live event streams from the trace
//! recorder.

use cnet_sim::exec::TimedExecution;

pub use crate::trace::OpEvent as Op;

use crate::trace::secs_to_ns;

impl Op {
    /// Converts every token record of a simulated execution into an
    /// [`Op`], in the execution's record order (see
    /// [`crate::trace::stream_execution`] for the enter-ordered streaming
    /// form). Simulator seconds become nanoseconds via
    /// [`secs_to_ns`](crate::trace::secs_to_ns).
    ///
    /// # Example
    ///
    /// ```
    /// use cnet_topology::construct::bitonic;
    /// use cnet_sim::{engine::run, spec::TimedTokenSpec, ids::ProcessId};
    /// use cnet_core::op::Op;
    ///
    /// let net = bitonic(2)?;
    /// let specs = vec![TimedTokenSpec::lock_step(ProcessId(0), 0, 0.0, 1.0, 1)];
    /// let ops = Op::from_execution(&run(&net, &specs)?);
    /// assert_eq!(ops.len(), 1);
    /// assert_eq!(ops[0].value, 0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_execution(exec: &TimedExecution) -> Vec<Op> {
        exec.records()
            .iter()
            .map(|r| Op {
                process: r.process.index(),
                enter_ns: secs_to_ns(r.enter_time),
                enter_seq: r.enter_seq,
                exit_ns: secs_to_ns(r.exit_time),
                exit_seq: r.exit_seq,
                value: r.value,
            })
            .collect()
    }
}

/// Builds an [`Op`] from a plain interval **in seconds** (converted with
/// [`secs_to_ns`](crate::trace::secs_to_ns)), using the value itself as
/// the tiebreak (adequate when all times are distinct, as in tests and the
/// threaded runtime where timestamps come from a monotonic clock).
pub fn op(process: usize, enter: f64, exit: f64, value: u64) -> Op {
    Op {
        process,
        enter_ns: secs_to_ns(enter),
        enter_seq: value as usize,
        exit_ns: secs_to_ns(exit),
        exit_seq: value as usize,
        value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_and_overlap() {
        let a = op(0, 0.0, 1.0, 0);
        let b = op(1, 2.0, 3.0, 1);
        let c = op(2, 0.5, 2.5, 2);
        assert!(a.completely_precedes(&b));
        assert!(!b.completely_precedes(&a));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
    }

    #[test]
    fn nanosecond_intervals_are_exact() {
        // One-nanosecond gaps order operations exactly — no f64 rounding.
        let a = Op { process: 0, enter_ns: 0, enter_seq: 0, exit_ns: 1, exit_seq: 0, value: 0 };
        let b = Op { process: 1, enter_ns: 2, enter_seq: 1, exit_ns: 3, exit_seq: 1, value: 1 };
        let c = Op { process: 2, enter_ns: 1, enter_seq: 2, exit_ns: 2, exit_seq: 2, value: 2 };
        assert!(a.completely_precedes(&b));
        assert!(a.completely_precedes(&c)); // exit (1, seq 0) < enter (1, seq 2)
        let late_exit = Op { exit_seq: 7, ..a }; // exit (1, seq 7) vs enter (1, seq 2)
        assert!(!late_exit.completely_precedes(&c));
        assert!(late_exit.overlaps(&c));
    }

    #[test]
    fn equal_ns_ties_fall_to_sequence_numbers() {
        let a = Op { process: 0, enter_ns: 0, enter_seq: 0, exit_ns: 5, exit_seq: 3, value: 0 };
        let b = Op { process: 1, enter_ns: 5, enter_seq: 4, exit_ns: 9, exit_seq: 9, value: 1 };
        let c = Op { process: 1, enter_ns: 5, enter_seq: 2, exit_ns: 9, exit_seq: 9, value: 1 };
        assert!(a.completely_precedes(&b)); // (5,3) < (5,4)
        assert!(!a.completely_precedes(&c)); // (5,3) > (5,2)
    }

    #[test]
    fn conversion_from_execution_preserves_fields() {
        use cnet_sim::{engine::run, ids::ProcessId, spec::TimedTokenSpec};
        use cnet_topology::construct::bitonic;
        let net = bitonic(2).unwrap();
        let specs = vec![
            TimedTokenSpec::lock_step(ProcessId(7), 1, 2.0, 3.0, 1),
        ];
        let exec = run(&net, &specs).unwrap();
        let ops = Op::from_execution(&exec);
        assert_eq!(ops[0].process, 7);
        assert_eq!(ops[0].enter_ns, 2_000_000_000);
        assert_eq!(ops[0].exit_ns, 5_000_000_000);
    }

    #[test]
    fn ops_round_trip_through_json() {
        use cnet_util::json;
        let a = op(3, 0.25, 1.75, 42);
        let back: Op = json::from_str(&json::to_string(&a)).unwrap();
        assert_eq!(a, back);
    }
}
