//! One-call consistency audits with human-readable reports and explicit
//! witnesses.
//!
//! [`audit`] bundles everything Section 2.4 and Section 5.1 can say about an
//! execution: both consistency verdicts, the explicit linearization witness
//! when one exists, the inconsistent token sets, and both fractions —
//! rendered by `Display` as the report the CLI and examples print.

use crate::consistency::{
    find_linearizability_violation, find_sequential_consistency_violation, Violation,
};
use crate::fractions::{non_linearizable_ops, non_sequentially_consistent_ops};
use crate::op::Op;
use std::fmt;

/// The full consistency audit of one execution.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditReport {
    /// Number of operations audited.
    pub operations: usize,
    /// Whether the execution is linearizable.
    pub linearizable: bool,
    /// Whether the execution is sequentially consistent.
    pub sequentially_consistent: bool,
    /// A linearizability violation witness, if any.
    pub linearizability_violation: Option<Violation>,
    /// A sequential-consistency violation witness, if any.
    pub sequential_consistency_violation: Option<Violation>,
    /// Indices of the non-linearizable operations.
    pub non_linearizable: Vec<usize>,
    /// Indices of the non-sequentially-consistent operations.
    pub non_sequentially_consistent: Vec<usize>,
    /// The non-linearizability fraction.
    pub f_nl: f64,
    /// The non-sequential-consistency fraction.
    pub f_nsc: f64,
}

/// Audits an execution (see module docs).
///
/// # Example
///
/// ```
/// use cnet_core::op::op;
/// use cnet_core::audit::audit;
///
/// let ops = vec![
///     op(0, 0.0, 1.0, 5),
///     op(1, 2.0, 3.0, 1), // finished-later, smaller value
/// ];
/// let report = audit(&ops);
/// assert!(!report.linearizable);
/// assert!(report.sequentially_consistent); // different processes
/// assert_eq!(report.non_linearizable, vec![1]);
/// ```
pub fn audit(ops: &[Op]) -> AuditReport {
    let non_linearizable = non_linearizable_ops(ops);
    let non_sequentially_consistent = non_sequentially_consistent_ops(ops);
    let n = ops.len().max(1);
    AuditReport {
        operations: ops.len(),
        linearizable: non_linearizable.is_empty(),
        sequentially_consistent: non_sequentially_consistent.is_empty(),
        linearizability_violation: find_linearizability_violation(ops),
        sequential_consistency_violation: find_sequential_consistency_violation(ops),
        f_nl: non_linearizable.len() as f64 / n as f64,
        f_nsc: non_sequentially_consistent.len() as f64 / n as f64,
        non_linearizable,
        non_sequentially_consistent,
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "operations:              {}", self.operations)?;
        writeln!(f, "linearizable:            {}", self.linearizable)?;
        writeln!(f, "sequentially consistent: {}", self.sequentially_consistent)?;
        writeln!(f, "non-linearizable ops:    {} (F_nl = {:.4})", self.non_linearizable.len(), self.f_nl)?;
        writeln!(
            f,
            "non-SC ops:              {} (F_nsc = {:.4})",
            self.non_sequentially_consistent.len(),
            self.f_nsc
        )?;
        if let Some(v) = self.linearizability_violation {
            writeln!(
                f,
                "linearizability witness: op #{} finished before op #{} yet returned more",
                v.earlier, v.later
            )?;
        }
        if let Some(v) = self.sequential_consistency_violation {
            writeln!(
                f,
                "SC witness:              op #{} precedes op #{} at the same process with a larger value",
                v.earlier, v.later
            )?;
        }
        Ok(())
    }
}

/// Produces the explicit linearization of a linearizable execution: the
/// operation indices sorted by value — which, for counting, is the unique
/// candidate total order. Returns `None` if the execution is not
/// linearizable (the value order would contradict real-time order) or if
/// values repeat (not a counting history).
///
/// # Example
///
/// ```
/// use cnet_core::op::op;
/// use cnet_core::audit::linearization;
///
/// let ops = vec![op(0, 0.0, 3.0, 1), op(1, 1.0, 2.0, 0)];
/// assert_eq!(linearization(&ops), Some(vec![1, 0]));
/// ```
pub fn linearization(ops: &[Op]) -> Option<Vec<usize>> {
    let mut order: Vec<usize> = (0..ops.len()).collect();
    order.sort_by_key(|&i| ops[i].value);
    // Values must be distinct for a counting history.
    if order.windows(2).any(|w| ops[w[0]].value == ops[w[1]].value) {
        return None;
    }
    // The order must extend complete precedence: no later-listed op may
    // completely precede an earlier-listed one.
    for (pos, &i) in order.iter().enumerate() {
        for &j in &order[pos + 1..] {
            if ops[j].completely_precedes(&ops[i]) {
                return None;
            }
        }
    }
    // And it must respect per-process order (implied by the above since
    // same-process ops never overlap, but check defensively).
    for (pos, &i) in order.iter().enumerate() {
        for &j in &order[pos + 1..] {
            if ops[i].process == ops[j].process && ops[j].enter_key() < ops[i].enter_key() {
                return None;
            }
        }
    }
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::op;

    #[test]
    fn audit_of_consistent_execution() {
        let ops: Vec<_> = (0..5).map(|k| op(k % 2, k as f64, k as f64 + 0.5, k as u64)).collect();
        let r = audit(&ops);
        assert!(r.linearizable && r.sequentially_consistent);
        assert_eq!(r.f_nl, 0.0);
        assert_eq!(r.f_nsc, 0.0);
        assert!(r.linearizability_violation.is_none());
        let text = r.to_string();
        assert!(text.contains("linearizable:            true"));
    }

    #[test]
    fn audit_reports_witnesses() {
        let ops = vec![op(0, 0.0, 1.0, 5), op(0, 2.0, 3.0, 2)];
        let r = audit(&ops);
        assert!(!r.linearizable && !r.sequentially_consistent);
        assert_eq!(r.non_linearizable, vec![1]);
        assert_eq!(r.non_sequentially_consistent, vec![1]);
        let text = r.to_string();
        assert!(text.contains("witness"));
    }

    #[test]
    fn audit_of_empty_execution() {
        let r = audit(&[]);
        assert!(r.linearizable && r.sequentially_consistent);
        assert_eq!(r.operations, 0);
        assert_eq!(r.f_nl, 0.0);
    }

    #[test]
    fn linearization_is_value_order_when_consistent() {
        let ops = vec![
            op(0, 0.0, 1.0, 2),
            op(1, 0.5, 1.5, 0),
            op(2, 0.2, 1.9, 1),
        ];
        assert_eq!(linearization(&ops), Some(vec![1, 2, 0]));
    }

    #[test]
    fn linearization_refuses_violations() {
        let ops = vec![op(0, 0.0, 1.0, 5), op(1, 2.0, 3.0, 1)];
        assert_eq!(linearization(&ops), None);
    }

    #[test]
    fn linearization_refuses_duplicate_values() {
        let ops = vec![op(0, 0.0, 1.0, 1), op(1, 2.0, 3.0, 1)];
        assert_eq!(linearization(&ops), None);
    }

    #[test]
    fn linearization_agrees_with_checker_on_random_cases() {
        let mut seed = 7u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (u32::MAX as f64 / 4.0)
        };
        for _ in 0..200 {
            let n = 6;
            let mut values: Vec<u64> = (0..n as u64).collect();
            // Pseudo-shuffle.
            for i in (1..n).rev() {
                let j = (next() * (i + 1) as f64) as usize % (i + 1);
                values.swap(i, j);
            }
            let ops: Vec<Op> = (0..n)
                .map(|k| {
                    let s = next();
                    let mut o = op(k % 2, s, s + next(), values[k]);
                    o.enter_seq = k;
                    o.exit_seq = k + 10;
                    o
                })
                .collect();
            let lin = crate::consistency::is_linearizable(&ops);
            // linearization() additionally enforces per-process order, which
            // is part of the serialization requirement. On same-process
            // overlap-free histories the two agree whenever per-process order
            // matches value order.
            if lin && crate::consistency::is_sequentially_consistent(&ops) {
                assert!(linearization(&ops).is_some(), "{ops:?}");
            }
            if !lin {
                assert!(linearization(&ops).is_none(), "{ops:?}");
            }
        }
    }
}
