//! Timing-condition predicates (Table 1 and Sections 3–4).
//!
//! Each predicate takes the [`TimingParams`] measured over a timed execution
//! and decides whether the execution satisfies the condition. Network
//! constants (depth, shallowness, influence radius) are captured when the
//! condition is built from a [`Network`].
//!
//! Unmeasurable parameters are read permissively, matching the paper's
//! quantifiers: a missing `C_g`/`C_L` (no non-overlapping or no consecutive
//! pairs) means the lower-bound constraint is vacuously satisfied, and a
//! missing `c_max` (no wire crossings at all) satisfies everything.

use cnet_sim::TimingParams;
use cnet_topology::analysis::influence_radius;
use cnet_topology::error::TopologyError;
use cnet_topology::Network;
use std::fmt;

/// A timing condition over the measured parameters of a schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TimingCondition {
    /// [LSST99, Cor. 3.7]: `d(G) · (c_max − 2·c_min) < C_g`.
    /// Sufficient for **linearizability** on uniform counting networks —
    /// and, by Theorem 3.2, for sequential consistency too.
    GlobalDelay {
        /// The network depth `d(G)`.
        depth: usize,
    },
    /// [LSST99, Cor. 3.10]: `c_max / c_min ≤ 2`. Sufficient for
    /// linearizability on uniform counting networks; also *necessary* for
    /// the bitonic network and the counting tree [LSST99, Thms 4.1/4.3].
    RatioAtMostTwo,
    /// [MPT97, Thm. 4.1]: `c_max / c_min ≤ 2·s(G) / d(G)`. Sufficient for
    /// linearizability on *arbitrary* counting networks (s = shallowness).
    MptSufficient {
        /// The network shallowness `s(G)`.
        shallowness: usize,
        /// The network depth `d(G)`.
        depth: usize,
    },
    /// [MPT97, Thm. 3.1]: `c_max / c_min ≤ d(G)/irad(G) + 1`. *Necessary*
    /// for linearizability (hence, by Theorem 3.2, for sequential
    /// consistency) on uniform counting networks.
    MptNecessary {
        /// The network depth `d(G)`.
        depth: usize,
        /// The influence radius `irad(G)`.
        influence_radius: usize,
    },
    /// This paper's Theorem 4.1: `d(G) · (c_max − 2·c_min) < C_L`.
    /// Sufficient for **sequential consistency** on uniform counting
    /// networks, but *not* for linearizability (Corollary 4.5) — the
    /// distinguishing condition.
    LocalDelay {
        /// The network depth `d(G)`.
        depth: usize,
    },
}

impl TimingCondition {
    /// Builds the [LSST99, Cor. 3.7] global-delay condition for a network.
    pub fn global_delay(net: &Network) -> Self {
        TimingCondition::GlobalDelay { depth: net.depth() }
    }

    /// Builds the [MPT97, Thm. 4.1] sufficient condition for a network.
    pub fn mpt_sufficient(net: &Network) -> Self {
        TimingCondition::MptSufficient {
            shallowness: net.shallowness(),
            depth: net.depth(),
        }
    }

    /// Builds the [MPT97, Thm. 3.1] necessary condition for a uniform
    /// network.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from the influence-radius computation
    /// (non-uniform network, fewer than two sinks, or no common ancestors).
    pub fn mpt_necessary(net: &Network) -> Result<Self, TopologyError> {
        Ok(TimingCondition::MptNecessary {
            depth: net.depth(),
            influence_radius: influence_radius(net)?,
        })
    }

    /// Builds this paper's Theorem 4.1 local-delay condition for a network.
    pub fn local_delay(net: &Network) -> Self {
        TimingCondition::LocalDelay { depth: net.depth() }
    }

    /// **Lemma 4.4**, the per-process refinement of Theorem 4.1: process
    /// `P` alone is guaranteed sequentially consistent values whenever
    /// `d(G)·(c_max − 2·c_min^P) < C_L^P` — even if *other* processes pace
    /// themselves arbitrarily. Evaluates that condition for one process
    /// from the measured per-process parameters (vacuously true when `P`
    /// issued fewer than two operations).
    pub fn lemma_4_4_holds_for(
        depth: usize,
        params: &TimingParams,
        process: cnet_sim::ProcessId,
    ) -> bool {
        let Some(c_max) = params.c_max else { return true };
        let Some(pt) = params.per_process.get(&process) else { return true };
        let Some(c_min_p) = pt.c_min else { return true };
        let lhs = depth as f64 * (c_max - 2.0 * c_min_p);
        match pt.local_delay {
            Some(cl) => lhs < cl,
            None => true,
        }
    }

    /// Whether the measured parameters satisfy the condition.
    ///
    /// # Example
    ///
    /// ```
    /// use cnet_core::conditions::TimingCondition;
    /// use cnet_sim::TimingParams;
    ///
    /// let mut p = TimingParams::default();
    /// p.c_min = Some(1.0);
    /// p.c_max = Some(1.8);
    /// assert!(TimingCondition::RatioAtMostTwo.holds(&p));
    /// p.c_max = Some(2.5);
    /// assert!(!TimingCondition::RatioAtMostTwo.holds(&p));
    /// ```
    pub fn holds(&self, params: &TimingParams) -> bool {
        let (Some(c_min), Some(c_max)) = (params.c_min, params.c_max) else {
            // No wire crossings measured: every condition holds vacuously.
            return true;
        };
        match *self {
            TimingCondition::GlobalDelay { depth } => {
                let lhs = depth as f64 * (c_max - 2.0 * c_min);
                match params.global_delay {
                    Some(cg) => lhs < cg,
                    None => true, // no non-overlapping pairs: C_g = +inf
                }
            }
            TimingCondition::RatioAtMostTwo => c_max <= 2.0 * c_min,
            TimingCondition::MptSufficient { shallowness, depth } => {
                depth > 0 && c_max * depth as f64 <= 2.0 * shallowness as f64 * c_min
            }
            TimingCondition::MptNecessary { depth, influence_radius } => {
                influence_radius > 0
                    && c_max * influence_radius as f64
                        <= (depth + influence_radius) as f64 * c_min
            }
            TimingCondition::LocalDelay { depth } => {
                let lhs = depth as f64 * (c_max - 2.0 * c_min);
                match params.local_delay {
                    Some(cl) => lhs < cl,
                    None => true, // no process issued two tokens: C_L = +inf
                }
            }
        }
    }

    /// What the condition guarantees (or is necessary for), as stated in the
    /// paper — used in experiment tables.
    pub fn role(&self) -> &'static str {
        match self {
            TimingCondition::GlobalDelay { .. } => {
                "sufficient for linearizability (LSST99 Cor 3.7)"
            }
            TimingCondition::RatioAtMostTwo => {
                "sufficient for linearizability (LSST99 Cor 3.10); necessary for bitonic/tree"
            }
            TimingCondition::MptSufficient { .. } => {
                "sufficient for linearizability (MPT97 Thm 4.1)"
            }
            TimingCondition::MptNecessary { .. } => {
                "necessary for linearizability (MPT97 Thm 3.1)"
            }
            TimingCondition::LocalDelay { .. } => {
                "sufficient for sequential consistency, not linearizability (Thm 4.1 / Cor 4.5)"
            }
        }
    }
}

impl fmt::Display for TimingCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TimingCondition::GlobalDelay { depth } => {
                write!(f, "{depth}·(c_max − 2·c_min) < C_g")
            }
            TimingCondition::RatioAtMostTwo => write!(f, "c_max/c_min ≤ 2"),
            TimingCondition::MptSufficient { shallowness, depth } => {
                write!(f, "c_max/c_min ≤ 2·{shallowness}/{depth}")
            }
            TimingCondition::MptNecessary { depth, influence_radius } => {
                write!(f, "c_max/c_min ≤ {depth}/{influence_radius} + 1")
            }
            TimingCondition::LocalDelay { depth } => {
                write!(f, "{depth}·(c_max − 2·c_min) < C_L")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_topology::construct::{bitonic, counting_tree};

    fn params(c_min: f64, c_max: f64, c_l: Option<f64>, c_g: Option<f64>) -> TimingParams {
        TimingParams {
            c_min: Some(c_min),
            c_max: Some(c_max),
            local_delay: c_l,
            global_delay: c_g,
            per_process: Default::default(),
        }
    }

    #[test]
    fn ratio_condition() {
        let c = TimingCondition::RatioAtMostTwo;
        assert!(c.holds(&params(1.0, 2.0, None, None)));
        assert!(!c.holds(&params(1.0, 2.0001, None, None)));
    }

    #[test]
    fn global_delay_condition() {
        let net = bitonic(4).unwrap(); // depth 3
        let c = TimingCondition::global_delay(&net);
        // d(c_max - 2 c_min) = 3*(5-2) = 9 < C_g?
        assert!(c.holds(&params(1.0, 5.0, None, Some(10.0))));
        assert!(!c.holds(&params(1.0, 5.0, None, Some(9.0))));
        assert!(c.holds(&params(1.0, 5.0, None, None))); // C_g = +inf
        // c_max < 2 c_min: lhs negative, holds for any C_g >= 0.
        assert!(c.holds(&params(1.0, 1.5, None, Some(0.0))));
    }

    #[test]
    fn local_delay_condition() {
        let net = bitonic(4).unwrap();
        let c = TimingCondition::local_delay(&net);
        assert!(c.holds(&params(1.0, 5.0, Some(9.5), None)));
        assert!(!c.holds(&params(1.0, 5.0, Some(9.0), None)));
        assert!(c.holds(&params(1.0, 5.0, None, None)));
    }

    #[test]
    fn mpt_sufficient_reduces_to_ratio_two_for_uniform() {
        // For uniform networks s = d, so the bound is ratio <= 2.
        let net = bitonic(8).unwrap();
        let c = TimingCondition::mpt_sufficient(&net);
        assert!(c.holds(&params(1.0, 2.0, None, None)));
        assert!(!c.holds(&params(1.0, 2.1, None, None)));
    }

    #[test]
    fn mpt_necessary_threshold_is_lg_w_based_for_bitonic() {
        // d/irad + 1 = (lg w (lg w+1)/2)/lg w + 1 = (lg w + 3)/2; for w=16
        // that's 3.5.
        let net = bitonic(16).unwrap();
        let c = TimingCondition::mpt_necessary(&net).unwrap();
        assert!(c.holds(&params(1.0, 3.5, None, None)));
        assert!(!c.holds(&params(1.0, 3.6, None, None)));
    }

    #[test]
    fn tree_necessary_condition() {
        // irad(tree) = depth, so threshold is 2 — matching LSST99 Thm 4.1.
        let net = counting_tree(8).unwrap();
        let c = TimingCondition::mpt_necessary(&net).unwrap();
        assert!(c.holds(&params(1.0, 2.0, None, None)));
        assert!(!c.holds(&params(1.0, 2.01, None, None)));
    }

    #[test]
    fn lemma_4_4_per_process_evaluation() {
        use cnet_sim::timing::ProcessTiming;
        use cnet_sim::ProcessId;
        let mut p = params(1.0, 5.0, None, None);
        // Process 0 paces itself: c_min^P = 2 (its own tokens are slower),
        // so the bound is d (5 - 4) = d; with C_L^P above that it holds.
        let d = 3usize;
        p.per_process.insert(
            ProcessId(0),
            ProcessTiming { c_min: Some(2.0), local_delay: Some(3.5) },
        );
        p.per_process.insert(
            ProcessId(1),
            ProcessTiming { c_min: Some(1.0), local_delay: Some(0.0) },
        );
        assert!(TimingCondition::lemma_4_4_holds_for(d, &p, ProcessId(0)));
        assert!(!TimingCondition::lemma_4_4_holds_for(d, &p, ProcessId(1)));
        // Unknown process: vacuous.
        assert!(TimingCondition::lemma_4_4_holds_for(d, &p, ProcessId(9)));
    }

    #[test]
    fn vacuous_parameters_hold() {
        let p = TimingParams::default();
        for c in [
            TimingCondition::RatioAtMostTwo,
            TimingCondition::GlobalDelay { depth: 3 },
            TimingCondition::LocalDelay { depth: 3 },
        ] {
            assert!(c.holds(&p));
        }
    }

    #[test]
    fn display_and_roles() {
        let c = TimingCondition::GlobalDelay { depth: 6 };
        assert!(c.to_string().contains("C_g"));
        assert!(c.role().contains("linearizability"));
        let c = TimingCondition::LocalDelay { depth: 6 };
        assert!(c.to_string().contains("C_L"));
        assert!(c.role().contains("sequential consistency"));
    }
}
