//! Closed-form bounds and structural formulas stated by the paper.
//!
//! These are the *predicted* quantities the experiment harness compares its
//! measurements against; each function names the theorem it encodes.

/// `lg w` for a power of two.
///
/// # Panics
///
/// Panics if `w` is not a positive power of two.
pub fn lg(w: usize) -> usize {
    assert!(w.is_power_of_two(), "lg needs a power of two, got {w}");
    w.trailing_zeros() as usize
}

/// Depth of the bitonic network: `d(B(w)) = lg w · (lg w + 1) / 2`.
pub fn bitonic_depth(w: usize) -> usize {
    lg(w) * (lg(w) + 1) / 2
}

/// Depth of the periodic network: `d(P(w)) = lg² w`.
pub fn periodic_depth(w: usize) -> usize {
    lg(w) * lg(w)
}

/// Proposition 5.6: split depth of the bitonic network,
/// `sd(B(w)) = (lg² w − lg w + 2) / 2`.
pub fn bitonic_split_depth(w: usize) -> usize {
    (lg(w) * lg(w) - lg(w) + 2) / 2
}

/// Proposition 5.8: split depth of the periodic network,
/// `sd(P(w)) = lg² w − lg w + 1`.
pub fn periodic_split_depth(w: usize) -> usize {
    lg(w) * lg(w) - lg(w) + 1
}

/// Propositions 5.9 / 5.10: split number of both classic networks,
/// `sp(B(w)) = sp(P(w)) = lg w`.
pub fn classic_split_number(w: usize) -> usize {
    lg(w)
}

/// Propositions 5.2 / 5.3: the asynchrony threshold for the bitonic
/// three-wave construction, `(lg w + 3) / 2`.
pub fn bitonic_wave_threshold(w: usize) -> f64 {
    (lg(w) as f64 + 3.0) / 2.0
}

/// Theorem 5.11's asynchrony threshold at level `ell`:
/// `1 + d(G) / d(S⁽ℓ⁾(G))`.
pub fn wave_threshold(depth: usize, region_depth: usize) -> f64 {
    assert!(region_depth > 0, "region depth must be positive");
    1.0 + depth as f64 / region_depth as f64
}

/// Theorem 5.4: upper bound on the non-sequential-consistency fraction
/// under `c_max/c_min < ℓ`: `(ℓ − 2) / (ℓ − 1)`.
///
/// # Panics
///
/// Panics if `ell < 2` (the theorem needs an integer `ℓ > 1`).
pub fn thm_5_4_nsc_upper(ell: usize) -> f64 {
    assert!(ell >= 2, "Theorem 5.4 needs ell > 1");
    (ell as f64 - 2.0) / (ell as f64 - 1.0)
}

/// Theorem 5.11: lower bound on the non-linearizability fraction at level
/// `ell`: `1 − 1/(2 − 2^{−ℓ})`.
pub fn thm_5_11_nl_lower(ell: usize) -> f64 {
    let half_pow = 0.5f64.powi(ell as i32);
    1.0 - 1.0 / (2.0 - half_pow)
}

/// Theorem 5.11: lower bound on the non-sequential-consistency fraction at
/// level `ell`: `2^{−ℓ} / (2 − 2^{−ℓ})`.
pub fn thm_5_11_nsc_lower(ell: usize) -> f64 {
    let half_pow = 0.5f64.powi(ell as i32);
    half_pow / (2.0 - half_pow)
}

/// Corollaries 5.12 / 5.13 at `ℓ = lg w`: the non-linearizability lower
/// bound `(w − 1) / (2w − 1)`.
pub fn cor_5_12_nl_lower(w: usize) -> f64 {
    (w as f64 - 1.0) / (2.0 * w as f64 - 1.0)
}

/// Corollaries 5.12 / 5.13 at `ℓ = lg w`: the non-sequential-consistency
/// lower bound `1 / (2w − 1)`.
pub fn cor_5_12_nsc_lower(w: usize) -> f64 {
    1.0 / (2.0 * w as f64 - 1.0)
}

/// The exact fractions achieved by the three-wave construction of
/// Theorem 5.11: `(n1 / (w + n1), n2 / (w + n1))` where `n1 = w(1 − 2^{−ℓ})`
/// and `n2 = w/2^ℓ` — the number of non-linearizable (all of wave 3) and
/// non-SC (the shared head of wave 3) tokens over the total `w + n1`.
pub fn three_wave_fractions(w: usize, ell: usize) -> (f64, f64) {
    let n2 = w / (1 << ell);
    let n1 = w - n2;
    let total = (w + n1) as f64;
    (n1 as f64 / total, n2 as f64 / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_formulas() {
        assert_eq!(bitonic_depth(2), 1);
        assert_eq!(bitonic_depth(8), 6);
        assert_eq!(bitonic_depth(64), 21);
        assert_eq!(periodic_depth(8), 9);
        assert_eq!(periodic_depth(16), 16);
    }

    #[test]
    fn split_formulas() {
        assert_eq!(bitonic_split_depth(4), 2);
        assert_eq!(bitonic_split_depth(16), 7);
        assert_eq!(periodic_split_depth(8), 7);
        assert_eq!(classic_split_number(32), 5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn lg_rejects_non_powers() {
        lg(6);
    }

    #[test]
    fn wave_thresholds() {
        assert_eq!(bitonic_wave_threshold(8), 3.0);
        // Theorem 5.11 at ell = sp: region depth 1, threshold 1 + d.
        assert_eq!(wave_threshold(bitonic_depth(8), 1), 7.0);
        // Corollary 5.13 for P(w): 1 + lg^2 w.
        assert_eq!(wave_threshold(periodic_depth(8), 1), 10.0);
    }

    #[test]
    fn thm_5_4_values() {
        assert_eq!(thm_5_4_nsc_upper(2), 0.0);
        assert_eq!(thm_5_4_nsc_upper(3), 0.5);
        assert!((thm_5_4_nsc_upper(11) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn thm_5_11_bounds_at_ell_1_are_one_third() {
        assert!((thm_5_11_nl_lower(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((thm_5_11_nsc_lower(1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn thm_5_11_limits() {
        // F_nl bound increases toward 1/2; F_nsc bound decreases toward 0.
        let mut prev_nl = 0.0;
        let mut prev_nsc = 1.0;
        for ell in 1..=20 {
            let nl = thm_5_11_nl_lower(ell);
            let nsc = thm_5_11_nsc_lower(ell);
            assert!(nl > prev_nl);
            assert!(nsc < prev_nsc);
            prev_nl = nl;
            prev_nsc = nsc;
        }
        assert!((prev_nl - 0.5).abs() < 1e-5);
        assert!(prev_nsc < 1e-5);
    }

    #[test]
    fn corollary_matches_theorem_at_ell_lg_w() {
        for w in [4usize, 8, 16, 64] {
            let ell = lg(w);
            assert!((thm_5_11_nl_lower(ell) - cor_5_12_nl_lower(w)).abs() < 1e-12, "w={w}");
            assert!((thm_5_11_nsc_lower(ell) - cor_5_12_nsc_lower(w)).abs() < 1e-12, "w={w}");
        }
    }

    #[test]
    fn construction_achieves_exactly_the_bounds() {
        // The three-wave construction's achieved fractions equal the stated
        // lower bounds (they are tight for the construction itself).
        for w in [8usize, 16] {
            for ell in 1..=lg(w) {
                let (nl, nsc) = three_wave_fractions(w, ell);
                assert!((nl - thm_5_11_nl_lower(ell)).abs() < 1e-12, "w={w} ell={ell}");
                assert!((nsc - thm_5_11_nsc_lower(ell)).abs() < 1e-12, "w={w} ell={ell}");
            }
        }
    }
}
