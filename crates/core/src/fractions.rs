//! Inconsistency fractions (Section 5.1).
//!
//! A token is **non-linearizable** if some token completely preceding it
//! returned a larger value; it is **non-sequentially-consistent** if some
//! earlier token *of the same process* returned a larger value. The
//! corresponding fractions divide by the total number of tokens.
//!
//! The **absolute** fractions ask for the *least* number of non-linearizable
//! (resp. non-SC) tokens whose removal yields a consistent execution;
//! Lemma 5.1 proves the absolute non-linearizability fraction equals the
//! plain one — validated here by [`absolute_non_linearizable_count`], an
//! exact solver for small instances.

use crate::op::Op;
use crate::trace::{enter_order, StreamingFractionMeter};

/// Runs a [`StreamingFractionMeter`] over the slice in enter order and
/// returns the slice indices whose flags satisfy `pick`.
fn metered_indices(
    ops: &[Op],
    pick: impl Fn(crate::trace::EventFlags) -> bool,
) -> Vec<usize> {
    let order = enter_order(ops);
    let mut meter = StreamingFractionMeter::new();
    let mut out: Vec<usize> = order
        .iter()
        .filter_map(|&i| if pick(meter.push(&ops[i])) { Some(i) } else { None })
        .collect();
    out.sort_unstable();
    out
}

/// Indices of the non-linearizable operations: those completely preceded by
/// an operation with a larger value. A batch wrapper over
/// [`StreamingFractionMeter`].
pub fn non_linearizable_ops(ops: &[Op]) -> Vec<usize> {
    metered_indices(ops, |f| f.non_linearizable)
}

/// Indices of the non-sequentially-consistent operations: those preceded, at
/// the same process, by an operation with a larger value. A batch wrapper
/// over [`StreamingFractionMeter`].
pub fn non_sequentially_consistent_ops(ops: &[Op]) -> Vec<usize> {
    metered_indices(ops, |f| f.non_sequentially_consistent)
}

/// The non-linearizability fraction: `|non-linearizable| / |all|`
/// (0 for an empty execution).
///
/// # Example
///
/// ```
/// use cnet_core::op::op;
/// use cnet_core::fractions::non_linearizability_fraction;
///
/// let ops = vec![
///     op(0, 0.0, 1.0, 5),
///     op(1, 2.0, 3.0, 1), // after op 0 with a smaller value
///     op(2, 2.0, 3.5, 6),
/// ];
/// assert_eq!(non_linearizability_fraction(&ops), 1.0 / 3.0);
/// ```
pub fn non_linearizability_fraction(ops: &[Op]) -> f64 {
    if ops.is_empty() {
        0.0
    } else {
        non_linearizable_ops(ops).len() as f64 / ops.len() as f64
    }
}

/// The non-sequential-consistency fraction: `|non-SC| / |all|`
/// (0 for an empty execution).
pub fn non_sequential_consistency_fraction(ops: &[Op]) -> f64 {
    if ops.is_empty() {
        0.0
    } else {
        non_sequentially_consistent_ops(ops).len() as f64 / ops.len() as f64
    }
}

/// **Exact** absolute non-linearizability count: the least number of
/// *non-linearizable* tokens whose removal yields a linearizable execution,
/// found by branch-and-bound over the conflict pairs. Exponential in the
/// worst case; used to validate Lemma 5.1 on small executions.
///
/// # Panics
///
/// Panics if the number of non-linearizable tokens exceeds 24 (the exact
/// search would be too large; use [`non_linearizable_ops`] and Lemma 5.1
/// instead).
pub fn absolute_non_linearizable_count(ops: &[Op]) -> usize {
    let candidates = non_linearizable_ops(ops);
    assert!(candidates.len() <= 24, "exact search limited to 24 non-linearizable tokens");
    let keepers: Vec<usize> =
        (0..ops.len()).filter(|i| !candidates.contains(i)).collect();
    // Search subsets of candidates to KEEP, largest first.
    let k = candidates.len();
    let mut best_removed = k;
    'subsets: for mask in (0u32..(1 << k)).rev() {
        let removed = k - mask.count_ones() as usize;
        if removed >= best_removed {
            continue;
        }
        let kept: Vec<usize> = keepers
            .iter()
            .copied()
            .chain((0..k).filter(|&i| mask >> i & 1 == 1).map(|i| candidates[i]))
            .collect();
        for (ai, &a) in kept.iter().enumerate() {
            for &b in &kept[ai + 1..] {
                let (x, y) = (&ops[a], &ops[b]);
                if (x.completely_precedes(y) && x.value > y.value)
                    || (y.completely_precedes(x) && y.value > x.value)
                {
                    continue 'subsets;
                }
            }
        }
        best_removed = removed;
        if best_removed == 0 {
            break;
        }
    }
    best_removed
}

/// **Exact** absolute non-sequential-consistency count: the least number of
/// *non-SC* tokens whose removal yields a sequentially consistent
/// execution. The paper proves the analogous equality only for
/// linearizability (Lemma 5.1); the same argument specializes per process,
/// and this solver confirms it empirically.
///
/// # Panics
///
/// Panics if the number of non-SC tokens exceeds 24.
pub fn absolute_non_sequentially_consistent_count(ops: &[Op]) -> usize {
    let candidates = non_sequentially_consistent_ops(ops);
    assert!(candidates.len() <= 24, "exact search limited to 24 non-SC tokens");
    let keepers: Vec<usize> = (0..ops.len()).filter(|i| !candidates.contains(i)).collect();
    let k = candidates.len();
    let mut best_removed = k;
    'subsets: for mask in (0u32..(1 << k)).rev() {
        let removed = k - mask.count_ones() as usize;
        if removed >= best_removed {
            continue;
        }
        let kept: Vec<usize> = keepers
            .iter()
            .copied()
            .chain((0..k).filter(|&i| mask >> i & 1 == 1).map(|i| candidates[i]))
            .collect();
        // Check per-process monotonicity over the kept set.
        let mut order = kept.clone();
        order.sort_by_key(|&i| (ops[i].process, ops[i].enter_key()));
        for pair in order.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if ops[a].process == ops[b].process && ops[a].value > ops[b].value {
                continue 'subsets;
            }
        }
        best_removed = removed;
        if best_removed == 0 {
            break;
        }
    }
    best_removed
}

/// Validates Lemma 5.1's key step on an execution: for every
/// non-linearizable token `T`, the linearizable tokens plus `T` already
/// contain a violation (so no strict subset of the non-linearizable tokens
/// can be removed instead). Returns `true` if the lemma's property holds.
pub fn lemma_5_1_holds(ops: &[Op]) -> bool {
    let bad = non_linearizable_ops(ops);
    let good: Vec<usize> = (0..ops.len()).filter(|i| !bad.contains(i)).collect();
    bad.iter().all(|&t| {
        good.iter().any(|&g| {
            ops[g].completely_precedes(&ops[t]) && ops[g].value > ops[t].value
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::op;

    #[test]
    fn empty_execution_has_zero_fractions() {
        assert_eq!(non_linearizability_fraction(&[]), 0.0);
        assert_eq!(non_sequential_consistency_fraction(&[]), 0.0);
    }

    #[test]
    fn consistent_execution_has_zero_fractions() {
        let ops: Vec<_> =
            (0..6).map(|k| op(k % 2, k as f64, k as f64 + 0.5, k as u64)).collect();
        assert!(non_linearizable_ops(&ops).is_empty());
        assert!(non_sequentially_consistent_ops(&ops).is_empty());
    }

    #[test]
    fn nl_is_superset_of_nsc() {
        // Every non-SC token is non-linearizable (same-process predecessors
        // completely precede).
        let ops = vec![
            op(0, 0.0, 1.0, 5),
            op(0, 2.0, 3.0, 2), // non-SC and non-lin
            op(1, 4.0, 5.0, 3), // non-lin only (5 precedes it)
        ];
        let nl = non_linearizable_ops(&ops);
        let nsc = non_sequentially_consistent_ops(&ops);
        assert_eq!(nl, vec![1, 2]);
        assert_eq!(nsc, vec![1]);
        for t in &nsc {
            assert!(nl.contains(t));
        }
        assert!(
            non_linearizability_fraction(&ops)
                >= non_sequential_consistency_fraction(&ops)
        );
    }

    #[test]
    fn later_small_value_does_not_condemn_earlier_tokens() {
        // The definition deliberately blames the LATER token: a single tiny
        // value cannot make all earlier tokens non-linearizable.
        let ops = vec![
            op(0, 0.0, 1.0, 10),
            op(1, 2.0, 3.0, 11),
            op(2, 4.0, 5.0, 12),
            op(3, 6.0, 7.0, 0),
        ];
        assert_eq!(non_linearizable_ops(&ops), vec![3]);
        assert_eq!(non_linearizability_fraction(&ops), 0.25);
    }

    #[test]
    fn absolute_count_equals_plain_count_lemma_5_1() {
        // Chains and fans of violations: Lemma 5.1 says the minimal removal
        // is exactly the non-linearizable set.
        let cases: Vec<Vec<Op>> = vec![
            // chain: 5 -> 3 -> 4 (both later ones non-lin)
            vec![op(0, 0.0, 1.0, 5), op(1, 2.0, 3.0, 3), op(2, 4.0, 5.0, 4)],
            // fan: one big early value, three small followers
            vec![
                op(0, 0.0, 1.0, 9),
                op(1, 2.0, 3.0, 1),
                op(2, 2.5, 3.5, 2),
                op(3, 4.0, 5.0, 3),
            ],
            // consistent
            vec![op(0, 0.0, 1.0, 1), op(1, 2.0, 3.0, 2)],
        ];
        for ops in cases {
            assert_eq!(
                absolute_non_linearizable_count(&ops),
                non_linearizable_ops(&ops).len(),
                "{ops:?}"
            );
            assert!(lemma_5_1_holds(&ops), "{ops:?}");
        }
    }

    #[test]
    fn lemma_5_1_on_pseudorandom_executions() {
        let mut seed = 99u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (u32::MAX as f64 / 8.0)
        };
        for trial in 0..100 {
            let n = 3 + trial % 8;
            let ops: Vec<Op> = (0..n)
                .map(|k| {
                    let s = next();
                    let mut o = op(k % 3, s, s + next(), (next() * 3.0) as u64 + k as u64 / 2);
                    o.enter_seq = k;
                    o.exit_seq = k + 100;
                    o
                })
                .collect();
            assert!(lemma_5_1_holds(&ops), "trial {trial}: {ops:?}");
            assert_eq!(
                absolute_non_linearizable_count(&ops),
                non_linearizable_ops(&ops).len(),
                "trial {trial}: {ops:?}"
            );
        }
    }

    #[test]
    fn absolute_nsc_count_equals_plain_count() {
        // The per-process specialization of Lemma 5.1's argument: the
        // minimal removal among non-SC tokens is all of them.
        let cases: Vec<Vec<Op>> = vec![
            vec![op(0, 0.0, 1.0, 5), op(0, 2.0, 3.0, 1), op(0, 4.0, 5.0, 2)],
            vec![
                op(0, 0.0, 1.0, 9),
                op(0, 2.0, 3.0, 1),
                op(1, 0.0, 1.0, 8),
                op(1, 2.0, 3.0, 2),
            ],
            vec![op(0, 0.0, 1.0, 1), op(0, 2.0, 3.0, 2)],
        ];
        for ops in cases {
            assert_eq!(
                absolute_non_sequentially_consistent_count(&ops),
                non_sequentially_consistent_ops(&ops).len(),
                "{ops:?}"
            );
        }
    }

    #[test]
    fn absolute_nsc_on_pseudorandom_executions() {
        let mut seed = 4242u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (u32::MAX as f64 / 8.0)
        };
        for trial in 0..60 {
            let n = 3 + trial % 7;
            let ops: Vec<Op> = (0..n)
                .map(|k| {
                    // Sequential per process: process k%2 issues at times 10k.
                    let s = 10.0 * k as f64;
                    let mut o = op(k % 2, s, s + 1.0, (next() * 4.0) as u64 + k as u64 / 3);
                    o.enter_seq = k;
                    o.exit_seq = k + 100;
                    o
                })
                .collect();
            assert_eq!(
                absolute_non_sequentially_consistent_count(&ops),
                non_sequentially_consistent_ops(&ops).len(),
                "trial {trial}: {ops:?}"
            );
        }
    }

    #[test]
    fn absolute_count_on_empty_execution_is_zero() {
        assert_eq!(absolute_non_linearizable_count(&[]), 0);
        assert_eq!(absolute_non_sequentially_consistent_count(&[]), 0);
        assert!(lemma_5_1_holds(&[]));
    }

    #[test]
    fn absolute_count_on_single_op_is_zero() {
        // A lone operation has no predecessor, whatever its value.
        let ops = [op(0, 0.0, 1.0, 1_000_000)];
        assert_eq!(absolute_non_linearizable_count(&ops), 0);
        assert_eq!(non_linearizable_ops(&ops).len(), 0);
        assert!(lemma_5_1_holds(&ops));
    }

    #[test]
    fn absolute_count_when_every_subsequent_op_violates() {
        // The worst case Lemma 5.1 permits: one early maximal value makes
        // every later token non-linearizable (n-1 of n; the first token in
        // enter order is never condemned). Built directly on the new event
        // type to pin the integer-nanosecond keys.
        let mut ops = vec![Op {
            process: 0,
            enter_ns: 0,
            enter_seq: 0,
            exit_ns: 10,
            exit_seq: 0,
            value: 100,
        }];
        for k in 1..8usize {
            ops.push(Op {
                process: k,
                enter_ns: 100 * k as u64,
                enter_seq: k,
                exit_ns: 100 * k as u64 + 10,
                exit_seq: k,
                value: k as u64,
            });
        }
        let bad = non_linearizable_ops(&ops);
        assert_eq!(bad, (1..8).collect::<Vec<_>>());
        // Lemma 5.1: the minimum removal is exactly the non-lin set — no
        // cleverer subset (e.g. removing the big token) counts, because the
        // absolute fraction only removes non-linearizable tokens.
        assert_eq!(absolute_non_linearizable_count(&ops), 7);
        assert!(lemma_5_1_holds(&ops));
    }

    #[test]
    #[should_panic(expected = "exact search limited to 24")]
    fn absolute_count_refuses_oversized_instances() {
        let mut ops = vec![op(0, 0.0, 0.5, 1_000)];
        for k in 1..27usize {
            ops.push(op(k, k as f64, k as f64 + 0.5, k as u64));
        }
        absolute_non_linearizable_count(&ops);
    }

    #[test]
    fn nsc_counts_one_per_decreasing_position() {
        // p0 issues values 5, 1, 2, 6: tokens 1 and 2 are non-SC (preceded by
        // 5); token 3 is fine.
        let ops = vec![
            op(0, 0.0, 1.0, 5),
            op(0, 2.0, 3.0, 1),
            op(0, 4.0, 5.0, 2),
            op(0, 6.0, 7.0, 6),
        ];
        assert_eq!(non_sequentially_consistent_ops(&ops), vec![1, 2]);
    }

    #[test]
    fn three_wave_fraction_is_one_third() {
        use cnet_sim::adversary::bitonic_three_wave;
        use cnet_sim::engine::run;
        use cnet_topology::construct::bitonic;
        for w in [4usize, 8, 16, 32] {
            let net = bitonic(w).unwrap();
            let lgw = w.trailing_zeros() as f64;
            // Just above the (lg w + 3)/2 threshold.
            let sched = bitonic_three_wave(&net, 1.0, (lgw + 3.0) / 2.0 + 0.01).unwrap();
            let exec = run(&net, &sched.specs).unwrap();
            let ops = crate::op::Op::from_execution(&exec);
            assert!(
                non_sequential_consistency_fraction(&ops) >= 1.0 / 3.0,
                "B({w}): F_nsc"
            );
            assert!(non_linearizability_fraction(&ops) >= 1.0 / 3.0, "B({w}): F_nl");
        }
    }
}
