//! Compositionality of the two consistency conditions (the paper's
//! footnote to Section 1.2).
//!
//! Linearizability is *compositional*: a system of counters is linearizable
//! iff each counter is \[HW90\]. Sequential consistency is **not**: two
//! counters can each be sequentially consistent while no single global
//! order explains both at once. This module makes that checkable:
//!
//! * [`system_is_linearizable`] — per-object linearizability (which, by
//!   compositionality, *is* system linearizability);
//! * [`system_is_sequentially_consistent`] — an exact search for a global
//!   serialization that respects every process's program order and gives
//!   every counter a legal (gap-free, in-order) value sequence;
//! * plus the classic two-counter counterexample in the tests.

use crate::consistency::is_linearizable;
use crate::op::Op;
use std::collections::BTreeMap;

/// One operation on a multi-counter system: which counter it incremented,
/// plus the usual operation record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemOp {
    /// The counter the operation incremented.
    pub object: usize,
    /// The operation record.
    pub op: Op,
}

/// Whether every counter's projection is linearizable. By the
/// compositionality of linearizability \[HW90\], this is equivalent to the
/// whole system being linearizable.
pub fn system_is_linearizable(ops: &[SystemOp]) -> bool {
    let mut by_object: BTreeMap<usize, Vec<Op>> = BTreeMap::new();
    for s in ops {
        by_object.entry(s.object).or_default().push(s.op);
    }
    by_object.values().all(|ops| is_linearizable(ops))
}

/// Whether the system is sequentially consistent: some total order of all
/// operations (a) preserves each process's program order and (b) restricts,
/// on each counter, to its values in increasing order `0, 1, 2, …`.
///
/// Exact exponential-time search with memoization over frontier states;
/// intended for the small histories used to demonstrate
/// (non-)compositionality.
///
/// # Panics
///
/// Panics if the history has more than 24 operations (the search space
/// would be too large) or if a process's operations overlap in time
/// (program order undefined).
pub fn system_is_sequentially_consistent(ops: &[SystemOp]) -> bool {
    assert!(ops.len() <= 24, "exact search limited to 24 operations");
    // Program order per process.
    let mut per_process: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, s) in ops.iter().enumerate() {
        per_process.entry(s.op.process).or_default().push(i);
    }
    for queue in per_process.values_mut() {
        queue.sort_by_key(|&i| ops[i].op.enter_key());
        for pair in queue.windows(2) {
            assert!(
                !ops[pair[0]].op.overlaps(&ops[pair[1]].op),
                "a process's operations must not overlap"
            );
        }
    }
    let queues: Vec<Vec<usize>> = per_process.into_values().collect();
    // Next expected value per object.
    let objects: Vec<usize> = {
        let mut o: Vec<usize> = ops.iter().map(|s| s.object).collect();
        o.sort_unstable();
        o.dedup();
        o
    };
    let object_index: BTreeMap<usize, usize> =
        objects.iter().enumerate().map(|(i, &o)| (o, i)).collect();

    // DFS over frontier positions with memoization: the set of reachable
    // frontiers is determined by per-queue positions (object counters are a
    // function of which ops were consumed... not quite — but the *multiset*
    // of consumed ops IS determined by the positions, and so are the object
    // counters, since each op's value is fixed).
    fn dfs(
        queues: &[Vec<usize>],
        ops: &[SystemOp],
        object_index: &BTreeMap<usize, usize>,
        pos: &mut Vec<usize>,
        next_value: &mut Vec<u64>,
        seen: &mut std::collections::HashSet<Vec<usize>>,
    ) -> bool {
        if pos.iter().zip(queues).all(|(&p, q)| p == q.len()) {
            return true;
        }
        if !seen.insert(pos.clone()) {
            return false;
        }
        for qi in 0..queues.len() {
            if pos[qi] == queues[qi].len() {
                continue;
            }
            let op_idx = queues[qi][pos[qi]];
            let s = &ops[op_idx];
            let oi = object_index[&s.object];
            if s.op.value == next_value[oi] {
                pos[qi] += 1;
                next_value[oi] += 1;
                if dfs(queues, ops, object_index, pos, next_value, seen) {
                    return true;
                }
                pos[qi] -= 1;
                next_value[oi] -= 1;
            }
        }
        false
    }

    let mut pos = vec![0usize; queues.len()];
    let mut next_value = vec![0u64; objects.len()];
    let mut seen = std::collections::HashSet::new();
    dfs(&queues, ops, &object_index, &mut pos, &mut next_value, &mut seen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::op;

    fn sys(object: usize, process: usize, enter: f64, exit: f64, value: u64) -> SystemOp {
        SystemOp { object, op: op(process, enter, exit, value) }
    }

    #[test]
    fn single_object_reduces_to_plain_sc() {
        // One counter, one process, increasing values: SC.
        let h = vec![sys(0, 0, 0.0, 1.0, 0), sys(0, 0, 2.0, 3.0, 1)];
        assert!(system_is_sequentially_consistent(&h));
        // Decreasing: not SC.
        let h = vec![sys(0, 0, 0.0, 1.0, 1), sys(0, 0, 2.0, 3.0, 0)];
        assert!(!system_is_sequentially_consistent(&h));
    }

    #[test]
    fn sequential_consistency_is_not_compositional() {
        // The classic crossing pattern, phrased with counters. Two counters
        // A (object 0) and B (object 1); two processes.
        //   p0: A.inc -> 1        then B.inc -> 0
        //   p1: B.inc -> 1        then A.inc -> 0
        // Projection on A: p0 got 1, p1 got 0 — per-process single ops, SC.
        // Projection on B: likewise SC.
        // Globally: p0's program order forces A=1 before B=0; for A to give
        // 1 to p0, p1's A=0 must come first, i.e. p1's second op before
        // p0's first; but symmetrically p1 needs p0's B=0 ... wait, B=0 is
        // p0's SECOND op. Cycle: p1.A0 < p0.A1 < p0.B0 < p1.B1 < p1.A0.
        let h = vec![
            sys(0, 0, 0.0, 1.0, 1), // p0: A -> 1
            sys(1, 0, 2.0, 3.0, 0), // p0: B -> 0
            sys(1, 1, 0.0, 1.0, 1), // p1: B -> 1
            sys(0, 1, 2.0, 3.0, 0), // p1: A -> 0
        ];
        // Each object alone is sequentially consistent:
        for object in [0usize, 1] {
            let proj: Vec<SystemOp> = h.iter().copied().filter(|s| s.object == object).collect();
            assert!(
                system_is_sequentially_consistent(&proj),
                "object {object} alone must be SC"
            );
        }
        // The system is not.
        assert!(!system_is_sequentially_consistent(&h));
    }

    #[test]
    fn linearizability_is_compositional_on_the_same_history() {
        // The crossing history is not linearizable per object (on A, p0's op
        // [0,1] completely precedes p1's [2,3] yet returns the larger value),
        // so compositionality has nothing to contradict here.
        let h = vec![
            sys(0, 0, 0.0, 1.0, 1),
            sys(1, 0, 2.0, 3.0, 0),
            sys(1, 1, 0.0, 1.0, 1),
            sys(0, 1, 2.0, 3.0, 0),
        ];
        assert!(!system_is_linearizable(&h));
    }

    #[test]
    fn linearizable_objects_make_linearizable_systems() {
        // Interleaved but real-time-consistent accesses to two counters.
        let h = vec![
            sys(0, 0, 0.0, 1.0, 0),
            sys(1, 1, 0.5, 1.5, 0),
            sys(0, 1, 2.0, 3.0, 1),
            sys(1, 0, 2.5, 3.5, 1),
        ];
        assert!(system_is_linearizable(&h));
        // And a globally SC order exists too (here: the real-time order).
        assert!(system_is_sequentially_consistent(&h));
    }

    #[test]
    fn global_sc_requires_gap_free_per_object_values() {
        // Object 0 hands out value 1 with no 0 ever: no legal serialization.
        let h = vec![sys(0, 0, 0.0, 1.0, 1)];
        assert!(!system_is_sequentially_consistent(&h));
    }

    #[test]
    fn search_handles_many_interleavings() {
        // 3 processes x 4 ops on one counter, values consistent with an
        // interleaving: must be found.
        let h = vec![
            sys(0, 0, 0.0, 1.0, 0),
            sys(0, 1, 0.0, 1.0, 1),
            sys(0, 2, 0.0, 1.0, 2),
            sys(0, 0, 2.0, 3.0, 3),
            sys(0, 1, 2.0, 3.0, 4),
            sys(0, 2, 2.0, 3.0, 5),
            sys(0, 0, 4.0, 5.0, 6),
            sys(0, 1, 4.0, 5.0, 7),
            sys(0, 2, 4.0, 5.0, 8),
        ];
        assert!(system_is_sequentially_consistent(&h));
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_process_ops_are_rejected() {
        let h = vec![sys(0, 0, 0.0, 5.0, 0), sys(0, 0, 1.0, 2.0, 1)];
        system_is_sequentially_consistent(&h);
    }
}
