//! Sequential consistency versus linearizability for counting networks.
//!
//! This crate implements the *contribution* of *Mavronicolas, Merritt,
//! Taubenfeld — "Sequentially Consistent versus Linearizable Counting
//! Networks"* (PODC 1999):
//!
//! * [`trace`] — the unified trace layer: the shared event type
//!   ([`trace::OpEvent`], integer-nanosecond timestamps), the
//!   [`trace::OpSink`] consumer trait, **online** monitors
//!   ([`trace::StreamingLinMonitor`], [`trace::StreamingScMonitor`],
//!   [`trace::StreamingFractionMeter`], [`trace::StreamingAuditor`]) that
//!   check a live run one event at a time in `O(log n)` amortized with
//!   memory bounded by concurrency, and the [`trace::EventMerger`] that
//!   turns per-thread streams into the global enter-ordered stream the
//!   monitors need.
//! * [`op`] — a provider-neutral operation record ([`op::Op`], an alias of
//!   [`trace::OpEvent`]) that both the simulator (`cnet-sim`) and the
//!   threaded runtime (`cnet-runtime`) produce, carrying a process, a
//!   real-time interval, and the value returned.
//! * [`consistency`] — the two consistency conditions of Section 2.4:
//!   [`consistency::is_linearizable`] (values respect the complete-precedence
//!   order across *all* processes) and
//!   [`consistency::is_sequentially_consistent`] (values increase along each
//!   *single* process's operation order).
//! * [`fractions`] — the inconsistency fractions of Section 5.1:
//!   non-linearizable and non-sequentially-consistent token sets, their
//!   fractions, the *absolute* fractions (least removal), and an exact
//!   small-instance solver used to validate Lemma 5.1.
//! * [`conditions`] — the timing-condition predicates of Table 1 and
//!   Sections 3–4, evaluated against measured
//!   [`cnet_sim::TimingParams`].
//! * [`theory`] — every closed-form bound the paper states
//!   (Theorem 5.4, Theorem 5.11, Corollaries 5.12/5.13, the split-depth and
//!   depth formulas of Propositions 5.6–5.10), for comparing measurement
//!   against prediction in the experiment harness.
//!
//! # Example
//!
//! ```
//! use cnet_topology::construct::bitonic;
//! use cnet_sim::adversary::bitonic_three_wave;
//! use cnet_sim::engine::run;
//! use cnet_core::op::Op;
//! use cnet_core::consistency::{is_linearizable, is_sequentially_consistent};
//! use cnet_core::fractions::non_sequential_consistency_fraction;
//!
//! let net = bitonic(8)?;
//! // Proposition 5.3's three-wave schedule at ratio above (lg 8 + 3)/2 = 3.
//! let sched = bitonic_three_wave(&net, 1.0, 4.0)?;
//! let exec = run(&net, &sched.specs)?;
//! let ops = Op::from_execution(&exec);
//! assert!(!is_linearizable(&ops));
//! assert!(!is_sequentially_consistent(&ops));
//! // One third of the tokens are non-sequentially-consistent.
//! assert!(non_sequential_consistency_fraction(&ops) >= 1.0 / 3.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod composition;
pub mod conditions;
pub mod consistency;
pub mod fractions;
pub mod op;
pub mod theory;
pub mod trace;

pub use audit::{audit, AuditReport};
pub use conditions::TimingCondition;
pub use consistency::{is_linearizable, is_sequentially_consistent};
pub use fractions::{non_linearizability_fraction, non_sequential_consistency_fraction};
pub use op::Op;
pub use trace::{
    EventMerger, MergeAuditor, OpEvent, OpSink, ShardFrontier, ShardMonitor, ShardStats,
    StreamingAuditor, StreamingFractionMeter, StreamingLinMonitor, StreamingQqcMeter,
    StreamingScMonitor,
};
