//! The consistency conditions of Section 2.4.
//!
//! For counting, values totally order operations, so both conditions reduce
//! to pairwise checks:
//!
//! * an execution is **linearizable** iff no operation completely precedes
//!   another yet returns a larger value (sorting by value is then the unique
//!   candidate linearization, and it extends the complete-precedence order);
//! * an execution is **sequentially consistent** iff each process's
//!   successive operations return increasing values.
//!
//! The functions here are the *batch* forms: they take a finished slice,
//! sort it once, and run the corresponding online monitor from
//! [`crate::trace`] over it ([`StreamingLinMonitor`] /
//! [`StreamingScMonitor`]). Live pipelines should feed the monitors
//! directly and skip the sort.

use crate::op::Op;
use crate::trace::{enter_order, StreamingLinMonitor, StreamingScMonitor};

/// A witnessed violation: the `earlier` operation completely precedes (or,
/// for sequential consistency, precedes at the same process) the `later`
/// operation, yet returned a larger value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Index (into the op slice) of the earlier operation.
    pub earlier: usize,
    /// Index of the later operation, which returned the smaller value.
    pub later: usize,
}

/// Finds a linearizability violation, if any: a pair where `earlier`
/// completely precedes `later` but `value(earlier) > value(later)`.
///
/// Runs in `O(n log n)`: sorts by enter key, then drives a
/// [`StreamingLinMonitor`] over the result and maps its push-order witness
/// back to slice indices.
pub fn find_linearizability_violation(ops: &[Op]) -> Option<Violation> {
    let order = enter_order(ops);
    let mut mon = StreamingLinMonitor::new();
    for &i in &order {
        if let Some(v) = mon.push(&ops[i]) {
            return Some(Violation { earlier: order[v.earlier], later: order[v.later] });
        }
    }
    None
}

/// Whether the execution is linearizable.
///
/// # Example
///
/// ```
/// use cnet_core::op::op;
/// use cnet_core::consistency::is_linearizable;
///
/// // b runs entirely after a but returns a smaller value: not linearizable.
/// let a = op(0, 0.0, 1.0, 5);
/// let b = op(1, 2.0, 3.0, 3);
/// assert!(!is_linearizable(&[a, b]));
/// // Overlapping operations may return values in either order.
/// let c = op(1, 0.5, 3.0, 3);
/// assert!(is_linearizable(&[a, c]));
/// ```
pub fn is_linearizable(ops: &[Op]) -> bool {
    find_linearizability_violation(ops).is_none()
}

/// Finds a sequential-consistency violation, if any: a process whose
/// successive operations return decreasing values. Sorts by
/// `(process, enter key)` and drives a [`StreamingScMonitor`].
pub fn find_sequential_consistency_violation(ops: &[Op]) -> Option<Violation> {
    let mut order: Vec<usize> = (0..ops.len()).collect();
    order.sort_by_key(|&i| (ops[i].process, ops[i].enter_key()));
    let mut mon = StreamingScMonitor::new();
    for &i in &order {
        if let Some(v) = mon.push(&ops[i]) {
            return Some(Violation { earlier: order[v.earlier], later: order[v.later] });
        }
    }
    None
}

/// Whether the execution is sequentially consistent: each process's
/// successive operations return increasing values.
///
/// # Example
///
/// ```
/// use cnet_core::op::op;
/// use cnet_core::consistency::is_sequentially_consistent;
///
/// // Different processes may see values out of real-time order...
/// let a = op(0, 0.0, 1.0, 5);
/// let b = op(1, 2.0, 3.0, 3);
/// assert!(is_sequentially_consistent(&[a, b]));
/// // ...but one process must see increasing values.
/// let c = op(0, 2.0, 3.0, 3);
/// assert!(!is_sequentially_consistent(&[a, c]));
/// ```
pub fn is_sequentially_consistent(ops: &[Op]) -> bool {
    find_sequential_consistency_violation(ops).is_none()
}

/// Whether the execution is sequentially consistent *with respect to one
/// process* (Observation 2.1's building block): that process's operations
/// return increasing values.
pub fn is_sequentially_consistent_for(ops: &[Op], process: usize) -> bool {
    let mut mine: Vec<&Op> = ops.iter().filter(|o| o.process == process).collect();
    mine.sort_by_key(|o| o.enter_key());
    mine.windows(2).all(|p| p[0].value < p[1].value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::op;

    #[test]
    fn empty_and_singleton_are_consistent() {
        assert!(is_linearizable(&[]));
        assert!(is_sequentially_consistent(&[]));
        let a = op(0, 0.0, 1.0, 0);
        assert!(is_linearizable(&[a]));
        assert!(is_sequentially_consistent(&[a]));
    }

    #[test]
    fn linearizable_implies_sequentially_consistent() {
        // A set of sequential ops with increasing values.
        let ops: Vec<_> = (0..10)
            .map(|k| op(k % 3, k as f64 * 2.0, k as f64 * 2.0 + 1.0, k as u64))
            .collect();
        assert!(is_linearizable(&ops));
        assert!(is_sequentially_consistent(&ops));
    }

    #[test]
    fn sc_but_not_linearizable() {
        // Two processes, each internally increasing; across processes, an
        // earlier-completing op has the larger value.
        let ops = vec![
            op(0, 0.0, 1.0, 5),
            op(0, 2.0, 3.0, 6),
            op(1, 4.0, 5.0, 1), // runs after everything, small value
            op(1, 6.0, 7.0, 2),
        ];
        assert!(is_sequentially_consistent(&ops));
        assert!(!is_linearizable(&ops));
        let v = find_linearizability_violation(&ops).unwrap();
        assert_eq!(ops[v.earlier].value, 6);
        assert!(ops[v.later].value < 6);
    }

    #[test]
    fn non_sc_implies_non_linearizable() {
        let ops = vec![op(0, 0.0, 1.0, 5), op(0, 2.0, 3.0, 3)];
        assert!(!is_sequentially_consistent(&ops));
        assert!(!is_linearizable(&ops));
    }

    #[test]
    fn overlapping_out_of_order_values_are_fine() {
        let ops = vec![op(0, 0.0, 10.0, 9), op(1, 1.0, 2.0, 0), op(2, 3.0, 4.0, 1)];
        assert!(is_linearizable(&ops));
    }

    #[test]
    fn per_process_check() {
        let ops = vec![
            op(0, 0.0, 1.0, 5),
            op(0, 2.0, 3.0, 3), // p0 decreases
            op(1, 0.0, 1.0, 1),
            op(1, 2.0, 3.0, 2), // p1 increases
        ];
        assert!(!is_sequentially_consistent_for(&ops, 0));
        assert!(is_sequentially_consistent_for(&ops, 1));
        assert!(is_sequentially_consistent_for(&ops, 99)); // vacuous
        let v = find_sequential_consistency_violation(&ops).unwrap();
        assert_eq!(ops[v.earlier].process, 0);
    }

    #[test]
    fn witness_indices_refer_to_the_original_slice() {
        // Deliberately feed the slice out of enter order: the wrapper must
        // translate the monitor's push indices back through the sort.
        let ops = vec![
            op(1, 4.0, 5.0, 1), // latest op, smallest value: the victim
            op(0, 0.0, 1.0, 5),
        ];
        let v = find_linearizability_violation(&ops).unwrap();
        assert_eq!(v, Violation { earlier: 1, later: 0 });
    }

    #[test]
    fn violation_sweep_matches_quadratic_oracle() {
        // Pseudo-random small executions: compare the sweep against the
        // O(n^2) definition.
        let mut seed = 12345u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (u32::MAX as f64 / 8.0)
        };
        for trial in 0..200 {
            let n = 2 + (trial % 9);
            let ops: Vec<Op> = (0..n)
                .map(|k| {
                    let s = next();
                    let e = s + next();
                    let mut o = op(k % 3, s, e, 0);
                    o.value = (next() * 4.0) as u64;
                    o.enter_seq = k;
                    o.exit_seq = k + 100;
                    o
                })
                .collect();
            let quadratic = ops.iter().enumerate().any(|(i, a)| {
                ops.iter()
                    .enumerate()
                    .any(|(j, b)| i != j && a.completely_precedes(b) && a.value > b.value)
            });
            assert_eq!(
                find_linearizability_violation(&ops).is_some(),
                quadratic,
                "trial {trial}: {ops:?}"
            );
        }
    }
}
