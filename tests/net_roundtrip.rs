//! End-to-end service tests: real sockets on an ephemeral loopback port,
//! concurrent client threads, pipelined bursts — checking the counting
//! guarantees (permutation of `0..n`, clean audits for linearizable
//! backends, *counted* violations for counting networks) survive the
//! transport.

use cnet_bench::{Measurement, ThroughputReport};
use cnet_core::trace::StreamingAuditor;
use cnet_net::loadgen::{run_loadgen, LoadGenConfig, LoadGenMode};
use cnet_net::server::{Backpressure, CounterServer, ServerConfig};
use cnet_net::RemoteCounter;
use cnet_runtime::{drain_remaining, FetchAddCounter, SharedNetworkCounter, TraceRecorder};
use cnet_topology::construct::bitonic;
use cnet_util::json;
use std::sync::Arc;

/// N client threads, each pushing pipelined bursts over its own
/// connection: the values received across the whole run must be exactly
/// the permutation `0..total` — the counting-service contract.
#[test]
fn concurrent_pipelined_clients_receive_a_permutation() {
    let threads = 4;
    let ops_per_thread = 2_500;
    let mut server = CounterServer::start(
        "127.0.0.1:0",
        Arc::new(FetchAddCounter::new()),
        ServerConfig { max_connections: threads, processes: threads, ..ServerConfig::default() },
    )
    .expect("bind ephemeral loopback port");
    let report = run_loadgen(
        server.local_addr(),
        &LoadGenConfig {
            threads,
            ops_per_thread,
            batch: 64,
            mode: LoadGenMode::Pipeline,
            collect_values: true,
        },
    )
    .expect("loadgen completes");
    assert_eq!(report.total_ops, (threads * ops_per_thread) as u64);
    assert_eq!(
        report.is_permutation(),
        Some(true),
        "values over the wire must be exactly 0..{}",
        report.total_ops
    );
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.ops, report.total_ops);
    assert_eq!(stats.total_connections, threads as u64);
    assert_eq!(stats.rejected_connections, 0);
}

/// With the PR 3 recorder attached, a linearizable backend served over
/// TCP audits clean: every increment recorded, zero violations.
#[test]
fn fetch_add_service_audits_clean_across_the_socket() {
    let threads = 4;
    let ops_per_thread = 500;
    let total = threads * ops_per_thread;
    let recorder = Arc::new(TraceRecorder::new(threads, 2 * total));
    let mut server = CounterServer::with_recorder(
        "127.0.0.1:0",
        Arc::new(FetchAddCounter::new()),
        Arc::clone(&recorder),
        ServerConfig { max_connections: threads, processes: threads, ..ServerConfig::default() },
    )
    .expect("bind ephemeral loopback port");
    let report = run_loadgen(
        server.local_addr(),
        &LoadGenConfig {
            threads,
            ops_per_thread,
            batch: 16,
            mode: LoadGenMode::Pipeline,
            collect_values: true,
        },
    )
    .expect("loadgen completes");
    assert_eq!(report.is_permutation(), Some(true));
    server.shutdown(); // joins handlers, which flush their recorder shards
    let mut auditor = StreamingAuditor::new();
    drain_remaining(&recorder, &mut auditor);
    assert_eq!(auditor.operations(), total);
    assert!(auditor.is_clean(), "fetch_add must audit clean: {}", auditor.summary());
}

/// A counting network served over TCP keeps the permutation property, and
/// any consistency violations the concurrency produces are *counted* by
/// the online monitors — never a crash, never a refused response.
#[test]
fn counting_network_violations_are_counted_not_fatal() {
    let fan = 4;
    let threads = 4;
    let ops_per_thread = 500;
    let total = threads * ops_per_thread;
    let recorder = Arc::new(TraceRecorder::new(threads, 2 * total));
    let net = bitonic(fan).expect("power-of-two fan");
    let mut server = CounterServer::with_recorder(
        "127.0.0.1:0",
        Arc::new(SharedNetworkCounter::new(&net)),
        Arc::clone(&recorder),
        ServerConfig { max_connections: threads, processes: fan, ..ServerConfig::default() },
    )
    .expect("bind ephemeral loopback port");
    let report = run_loadgen(
        server.local_addr(),
        &LoadGenConfig {
            threads,
            ops_per_thread,
            batch: 8,
            mode: LoadGenMode::Pipeline,
            collect_values: true,
        },
    )
    .expect("loadgen completes against a counting network");
    assert_eq!(
        report.is_permutation(),
        Some(true),
        "the step property must survive the transport"
    );
    server.shutdown();
    let mut auditor = StreamingAuditor::new();
    drain_remaining(&recorder, &mut auditor);
    assert_eq!(auditor.operations(), total);
    // The monitors report fractions, they do not veto: whatever the
    // interleaving produced is a number in [0, 1], not a panic.
    let f_nl = auditor.f_nl();
    let f_nsc = auditor.f_nsc();
    assert!((0.0..=1.0).contains(&f_nl), "F_nl out of range: {f_nl}");
    assert!((0.0..=1.0).contains(&f_nsc), "F_nsc out of range: {f_nsc}");
    assert_eq!(auditor.non_linearizable() == 0, auditor.is_linearizable());
}

/// Batch mode end-to-end: each burst is one `NextBatch` frame, the server
/// claims it through the backend's batched traversal (one atomic per
/// balancer per batch) and records one widened recorder interval per
/// batch — and the run still yields an exact permutation of `0..n` with a
/// clean audit.
#[test]
fn batched_loadgen_yields_a_permutation_with_a_clean_audit() {
    let threads = 4;
    let ops_per_thread = 1_000;
    let total = threads * ops_per_thread;
    let recorder = Arc::new(TraceRecorder::new(threads, 2 * total));
    let mut server = CounterServer::with_recorder(
        "127.0.0.1:0",
        Arc::new(FetchAddCounter::new()),
        Arc::clone(&recorder),
        ServerConfig { max_connections: threads, processes: threads, ..ServerConfig::default() },
    )
    .expect("bind ephemeral loopback port");
    let report = run_loadgen(
        server.local_addr(),
        &LoadGenConfig {
            threads,
            ops_per_thread,
            batch: 64,
            mode: LoadGenMode::Batch,
            collect_values: true,
        },
    )
    .expect("batched loadgen completes");
    assert_eq!(
        report.is_permutation(),
        Some(true),
        "batched values over the wire must be exactly 0..{}",
        report.total_ops
    );
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.ops, total as u64);
    // Every burst was a single NextBatch frame: 1000/64 → 16 per worker.
    assert_eq!(stats.batches, (threads * ops_per_thread.div_ceil(64)) as u64);
    let mut auditor = StreamingAuditor::new();
    drain_remaining(&recorder, &mut auditor);
    assert_eq!(auditor.operations(), total, "one widened interval records the whole batch");
    assert!(auditor.is_clean(), "batched fetch_add must audit clean: {}", auditor.summary());
}

/// At the connection limit with the reject policy, surplus clients get a
/// clean `Busy` refusal surfaced as an error — not a hang, not a panic.
#[test]
fn busy_rejection_surfaces_as_a_client_error() {
    let server = CounterServer::start(
        "127.0.0.1:0",
        Arc::new(FetchAddCounter::new()),
        ServerConfig { max_connections: 1, backpressure: Backpressure::Reject, processes: 1 },
    )
    .expect("bind ephemeral loopback port");
    let holder = RemoteCounter::connect(server.local_addr(), 1).expect("first connection");
    assert_eq!(holder.try_next(0).expect("slot holder is served"), 0);
    let surplus = RemoteCounter::connect(server.local_addr(), 1).expect("TCP accept still works");
    let err = surplus.try_next(0).expect_err("server at capacity must refuse");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused, "{err}");
}

/// The committed benchmark artifact must parse as schema v3 — including
/// rows that predate the `transport` field (absent means `"memory"`) or
/// the `batch`/`oversubscribed` fields (absent means `1`/`false`) — and
/// the v3 fields must round-trip through cnet-util JSON.
#[test]
fn committed_bench_artifact_parses_as_schema_v3() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let text = std::fs::read_to_string(path).expect("BENCH_throughput.json is committed");
    let report: ThroughputReport = json::from_str(&text).expect("artifact parses as schema v3");
    assert_eq!(report.version, 3);
    assert!(!report.measurements.is_empty());
    for m in &report.measurements {
        assert!(
            m.transport == Measurement::TRANSPORT_MEMORY
                || m.transport == Measurement::TRANSPORT_TCP,
            "unknown transport {:?}",
            m.transport
        );
        assert!(m.batch >= 1, "batch must be at least 1: {m:?}");
        assert_eq!(
            m.oversubscribed,
            m.threads > report.cores,
            "oversubscription flag inconsistent with cores: {m:?}"
        );
        assert!(m.mops > 0.0);
    }
    // The acceptance row: batched traversal on the compiled bitonic B(8)
    // at 8 threads beats the per-token path at least 3x.
    let batched = report
        .batch_cell("compiled", "bitonic", 8, 64)
        .expect("artifact carries the batch=64 compiled/bitonic row at 8 threads");
    assert_eq!(batched.batch, 64);
    let speedup = report
        .batch_speedup("compiled", "bitonic", 8, 64)
        .expect("batch speedup computable");
    assert!(speedup >= 3.0, "batch=64 must be at least 3x batch=1, got {speedup:.2}x");
    // The v3 fields survive a serialize/deserialize round trip.
    let back: ThroughputReport =
        json::from_str(&json::to_string_pretty(&report)).expect("round-trips");
    assert_eq!(back, report);
}
