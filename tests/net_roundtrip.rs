//! End-to-end service tests: real sockets on an ephemeral loopback port,
//! concurrent client threads, pipelined bursts — checking the counting
//! guarantees (permutation of `0..n`, clean audits for linearizable
//! backends, *counted* violations for counting networks) survive the
//! transport.

use cnet_bench::{Measurement, ThroughputReport};
use cnet_core::trace::StreamingAuditor;
use cnet_net::loadgen::{run_loadgen, LoadGenConfig, LoadGenMode};
use cnet_net::server::{Backpressure, CounterServer, ServerConfig};
use cnet_net::RemoteCounter;
use cnet_runtime::{
    drain_remaining, FetchAddCounter, RelaxedCounter, SharedNetworkCounter, TraceRecorder,
};
use cnet_topology::construct::bitonic;
use cnet_util::json;
use std::sync::Arc;

/// N client threads, each pushing pipelined bursts over its own
/// connection: the values received across the whole run must be exactly
/// the permutation `0..total` — the counting-service contract.
#[test]
fn concurrent_pipelined_clients_receive_a_permutation() {
    let threads = 4;
    let ops_per_thread = 2_500;
    let mut server = CounterServer::start(
        "127.0.0.1:0",
        Arc::new(FetchAddCounter::new()),
        ServerConfig { max_connections: threads, processes: threads, ..ServerConfig::default() },
    )
    .expect("bind ephemeral loopback port");
    let report = run_loadgen(
        server.local_addr(),
        &LoadGenConfig {
            threads,
            connections: 0,
            ops_per_thread,
            batch: 64,
            mode: LoadGenMode::Pipeline,
            collect_values: true,
            route: false,
        },
    )
    .expect("loadgen completes");
    assert_eq!(report.total_ops, (threads * ops_per_thread) as u64);
    assert_eq!(
        report.is_permutation(),
        Some(true),
        "values over the wire must be exactly 0..{}",
        report.total_ops
    );
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.ops, report.total_ops);
    assert_eq!(stats.total_connections, threads as u64);
    assert_eq!(stats.rejected_connections, 0);
}

/// With the PR 3 recorder attached, a linearizable backend served over
/// TCP audits clean: every increment recorded, zero violations.
#[test]
fn fetch_add_service_audits_clean_across_the_socket() {
    let threads = 4;
    let ops_per_thread = 500;
    let total = threads * ops_per_thread;
    let recorder = Arc::new(TraceRecorder::new(threads, 2 * total));
    let mut server = CounterServer::with_recorder(
        "127.0.0.1:0",
        Arc::new(FetchAddCounter::new()),
        Arc::clone(&recorder),
        ServerConfig { max_connections: threads, processes: threads, ..ServerConfig::default() },
    )
    .expect("bind ephemeral loopback port");
    let report = run_loadgen(
        server.local_addr(),
        &LoadGenConfig {
            threads,
            connections: 0,
            ops_per_thread,
            batch: 16,
            mode: LoadGenMode::Pipeline,
            collect_values: true,
            route: false,
        },
    )
    .expect("loadgen completes");
    assert_eq!(report.is_permutation(), Some(true));
    server.shutdown(); // joins handlers, which flush their recorder shards
    let mut auditor = StreamingAuditor::new();
    drain_remaining(&recorder, &mut auditor);
    assert_eq!(auditor.operations(), total);
    assert!(auditor.is_clean(), "fetch_add must audit clean: {}", auditor.summary());
}

/// A counting network served over TCP keeps the permutation property, and
/// any consistency violations the concurrency produces are *counted* by
/// the online monitors — never a crash, never a refused response.
#[test]
fn counting_network_violations_are_counted_not_fatal() {
    let fan = 4;
    let threads = 4;
    let ops_per_thread = 500;
    let total = threads * ops_per_thread;
    let recorder = Arc::new(TraceRecorder::new(threads, 2 * total));
    let net = bitonic(fan).expect("power-of-two fan");
    let mut server = CounterServer::with_recorder(
        "127.0.0.1:0",
        Arc::new(SharedNetworkCounter::new(&net)),
        Arc::clone(&recorder),
        ServerConfig { max_connections: threads, processes: fan, ..ServerConfig::default() },
    )
    .expect("bind ephemeral loopback port");
    let report = run_loadgen(
        server.local_addr(),
        &LoadGenConfig {
            threads,
            connections: 0,
            ops_per_thread,
            batch: 8,
            mode: LoadGenMode::Pipeline,
            collect_values: true,
            route: false,
        },
    )
    .expect("loadgen completes against a counting network");
    assert_eq!(
        report.is_permutation(),
        Some(true),
        "the step property must survive the transport"
    );
    server.shutdown();
    let mut auditor = StreamingAuditor::new();
    drain_remaining(&recorder, &mut auditor);
    assert_eq!(auditor.operations(), total);
    // The monitors report fractions, they do not veto: whatever the
    // interleaving produced is a number in [0, 1], not a panic.
    let f_nl = auditor.f_nl();
    let f_nsc = auditor.f_nsc();
    assert!((0.0..=1.0).contains(&f_nl), "F_nl out of range: {f_nl}");
    assert!((0.0..=1.0).contains(&f_nsc), "F_nsc out of range: {f_nsc}");
    assert_eq!(auditor.non_linearizable() == 0, auditor.is_linearizable());
}

/// Batch mode end-to-end: each burst is one `NextBatch` frame, the server
/// claims it through the backend's batched traversal (one atomic per
/// balancer per batch) and records one widened recorder interval per
/// batch — and the run still yields an exact permutation of `0..n` with a
/// clean audit.
#[test]
fn batched_loadgen_yields_a_permutation_with_a_clean_audit() {
    let threads = 4;
    let ops_per_thread = 1_000;
    let total = threads * ops_per_thread;
    let recorder = Arc::new(TraceRecorder::new(threads, 2 * total));
    let mut server = CounterServer::with_recorder(
        "127.0.0.1:0",
        Arc::new(FetchAddCounter::new()),
        Arc::clone(&recorder),
        ServerConfig { max_connections: threads, processes: threads, ..ServerConfig::default() },
    )
    .expect("bind ephemeral loopback port");
    let report = run_loadgen(
        server.local_addr(),
        &LoadGenConfig {
            threads,
            connections: 0,
            ops_per_thread,
            batch: 64,
            mode: LoadGenMode::Batch,
            collect_values: true,
            route: false,
        },
    )
    .expect("batched loadgen completes");
    assert_eq!(
        report.is_permutation(),
        Some(true),
        "batched values over the wire must be exactly 0..{}",
        report.total_ops
    );
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.ops, total as u64);
    // Every burst was a single NextBatch frame: 1000/64 → 16 per worker.
    assert_eq!(stats.batches, (threads * ops_per_thread.div_ceil(64)) as u64);
    let mut auditor = StreamingAuditor::new();
    drain_remaining(&recorder, &mut auditor);
    assert_eq!(auditor.operations(), total, "one widened interval records the whole batch");
    assert!(auditor.is_clean(), "batched fetch_add must audit clean: {}", auditor.summary());
}

/// At the connection limit with the reject policy, surplus clients get a
/// clean `Busy` refusal surfaced as an error — not a hang, not a panic.
#[test]
fn busy_rejection_surfaces_as_a_client_error() {
    let server = CounterServer::start(
        "127.0.0.1:0",
        Arc::new(FetchAddCounter::new()),
        ServerConfig {
            max_connections: 1,
            backpressure: Backpressure::Reject,
            processes: 1,
            reactors: 1,
        },
    )
    .expect("bind ephemeral loopback port");
    let holder = RemoteCounter::connect(server.local_addr(), 1).expect("first connection");
    assert_eq!(holder.try_next(0).expect("slot holder is served"), 0);
    let surplus = RemoteCounter::connect(server.local_addr(), 1).expect("TCP accept still works");
    let err = surplus.try_next(0).expect_err("server at capacity must refuse");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused, "{err}");
}

/// The reactor's defining regime: 256 open connections of which only a
/// few are active at any instant (4 workers round-robin their bursts
/// across their shares). The run must still hand out an exact permutation
/// and audit clean through the slot-sharded recorder — the
/// slot = process = recorder-shard invariant survives connection counts
/// far beyond the thread count.
#[test]
fn many_mostly_idle_connections_keep_the_permutation_and_audit_clean() {
    let connections = 256;
    let threads = 4;
    let ops_per_thread = 2_048;
    let total = threads * ops_per_thread;
    let recorder = Arc::new(TraceRecorder::new(connections, 256));
    let mut server = CounterServer::with_recorder(
        "127.0.0.1:0",
        Arc::new(FetchAddCounter::new()),
        Arc::clone(&recorder),
        ServerConfig {
            max_connections: connections,
            processes: connections,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral loopback port");
    let report = run_loadgen(
        server.local_addr(),
        &LoadGenConfig {
            threads,
            connections,
            ops_per_thread,
            batch: 16,
            mode: LoadGenMode::Batch,
            collect_values: true,
            route: false,
        },
    )
    .expect("loadgen completes over 256 connections");
    assert_eq!(report.connections, connections);
    assert_eq!(report.is_permutation(), Some(true), "permutation across 256 connections");
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.total_connections, connections as u64);
    assert_eq!(stats.ops, total as u64);
    assert!(stats.reactor_wakeups > 0, "the reactor actually polled");
    assert!(stats.reactor_events >= stats.reactor_wakeups / 64, "events were delivered");
    let mut auditor = StreamingAuditor::new();
    drain_remaining(&recorder, &mut auditor);
    assert_eq!(auditor.operations(), total, "every increment reached its slot's shard");
    assert!(auditor.is_clean(), "fetch_add over 256 conns must audit clean: {}", auditor.summary());
}

/// Graceful drain: a client pipelines eight `Next` frames and a
/// `Shutdown` in one write. The server must answer all eight in order
/// *before* the `Bye` — buffered in-flight frames are served, not
/// dropped, when shutdown arrives on the same connection.
#[test]
fn graceful_shutdown_answers_inflight_frames_before_bye() {
    use cnet_net::wire::{FrameDecoder, Request, Response};
    use std::io::{Read, Write};

    let mut server = CounterServer::start(
        "127.0.0.1:0",
        Arc::new(FetchAddCounter::new()),
        ServerConfig { max_connections: 1, processes: 1, ..ServerConfig::default() },
    )
    .expect("bind ephemeral loopback port");
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    let mut out = Vec::new();
    for seq in 0..8u32 {
        Request::Next.encode(seq, &mut out);
    }
    Request::Shutdown.encode(8, &mut out);
    stream.write_all(&out).expect("one write carrying nine frames");
    let mut decoder = FrameDecoder::new();
    let mut got: Vec<(u32, Response)> = Vec::new();
    let mut buf = [0u8; 4096];
    while !matches!(got.last(), Some((_, Response::Bye))) {
        let n = stream.read(&mut buf).expect("read responses");
        assert!(n > 0, "EOF before Bye: got {} responses", got.len());
        decoder.extend(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(Some(payload)) => {
                    got.push(Response::decode(payload).expect("well-formed response"));
                }
                Ok(None) => break,
                Err(e) => panic!("framing error mid-drain: {e:?}"),
            }
        }
    }
    assert_eq!(got.len(), 9, "eight values then Bye");
    for (i, (seq, resp)) in got[..8].iter().enumerate() {
        assert_eq!(*seq, i as u32);
        assert_eq!(*resp, Response::Value { value: i as u64 }, "in-flight frame {i} answered");
    }
    assert_eq!(got[8].0, 8);
    server.shutdown();
    assert_eq!(server.stats().ops, 8);
}

/// The committed benchmark artifact must parse as schema v7 — including
/// rows that predate the `transport` field (absent means `"memory"`), the
/// `batch`/`oversubscribed` fields (absent means `1`/`false`), the
/// `connections`/percentile fields (absent means `0`/`null`), the
/// `nodes` field (absent means `1`), the `qqc_max`/`qqc_mean`/`f_nl`
/// fields (absent means `null`), or the v7 `retention`/`audit_threads`/
/// `sample_k` columns (absent means `null`/`0`/`1`) — and the fields must
/// round-trip through cnet-util JSON.
#[test]
fn committed_bench_artifact_parses_as_schema_v7() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let text = std::fs::read_to_string(path).expect("BENCH_throughput.json is committed");
    let report: ThroughputReport = json::from_str(&text).expect("artifact parses as schema v7");
    assert_eq!(report.version, 7);
    assert!(!report.measurements.is_empty());
    for m in &report.measurements {
        assert!(
            m.transport == Measurement::TRANSPORT_MEMORY
                || m.transport == Measurement::TRANSPORT_TCP,
            "unknown transport {:?}",
            m.transport
        );
        assert!(m.batch >= 1, "batch must be at least 1: {m:?}");
        assert_eq!(
            m.oversubscribed,
            m.threads > report.cores,
            "oversubscription flag inconsistent with cores: {m:?}"
        );
        assert!(m.mops > 0.0);
        assert!(m.nodes >= 1, "nodes must be at least 1: {m:?}");
        if m.transport == Measurement::TRANSPORT_TCP {
            // Every v4+ tcp row carries its connection count and the
            // end-to-end burst latency percentiles of the kept run.
            assert!(m.connections > 0, "tcp row without connections: {m:?}");
            let (p50, p99, p999) =
                (m.p50_ns.expect("p50"), m.p99_ns.expect("p99"), m.p999_ns.expect("p999"));
            assert!(p50 > 0 && p50 <= p99 && p99 <= p999, "percentiles out of order: {m:?}");
        } else {
            assert_eq!(m.connections, 0, "memory rows have no connections: {m:?}");
            assert!(m.p99_ns.is_none(), "memory rows have no latency column: {m:?}");
            assert_eq!(m.nodes, 1, "memory rows are single-process: {m:?}");
        }
    }
    // The cluster acceptance rows (schema v5): the two-node partitioned
    // fabric keeps at least a quarter of the single-server tcp
    // throughput on the same cell — forwarding costs one extra hop, not
    // an order of magnitude.
    let cluster = report
        .measurements
        .iter()
        .filter(|m| m.nodes == 2 && m.transport == Measurement::TRANSPORT_TCP)
        .collect::<Vec<_>>();
    assert!(!cluster.is_empty(), "artifact carries nodes: 2 rows");
    for two in &cluster {
        let one = report
            .net_cell(&two.counter, &two.network, two.threads)
            .expect("every cluster row has its single-node tcp counterpart");
        assert!(
            two.mops >= 0.25 * one.mops,
            "two-node fabric must keep >=25% of the single-node cell: \
             {:.3} vs {:.3} Mops/s at {} threads",
            two.mops,
            one.mops,
            two.threads
        );
    }
    // The batching acceptance row: batched traversal on the compiled
    // bitonic B(8) at 8 threads beats the per-token path at least 3x.
    let batched = report
        .batch_cell("compiled", "bitonic", 8, 64)
        .expect("artifact carries the batch=64 compiled/bitonic row at 8 threads");
    assert_eq!(batched.batch, 64);
    let speedup = report
        .batch_speedup("compiled", "bitonic", 8, 64)
        .expect("batch speedup computable");
    assert!(speedup >= 3.0, "batch=64 must be at least 3x batch=1, got {speedup:.2}x");
    // The reactor acceptance rows: the connection-scaling sweep at 64,
    // 1024, and 10000 mostly-idle connections, with flat tail latency —
    // p99 at 1024 connections within 2x of p99 at 64.
    let conn_row = |count: usize| {
        report
            .measurements
            .iter()
            .find(|m| m.transport == Measurement::TRANSPORT_TCP && m.connections == count)
            .unwrap_or_else(|| panic!("artifact carries the {count}-connection tcp row"))
    };
    let (small, large, huge) = (conn_row(64), conn_row(1024), conn_row(10_000));
    assert!(huge.total_ops > 0);
    let (p99_small, p99_large) = (small.p99_ns.expect("p99"), large.p99_ns.expect("p99"));
    assert!(
        p99_large <= 2 * p99_small,
        "p99 must stay flat under connection scaling: {p99_small}ns at 64 conns, \
         {p99_large}ns at 1024"
    );
    // The consistency acceptance rows (schema v6): every backend's
    // qqc-bearing cell carries finite measured lateness, and the strict
    // backends that audited clean (f_nl == 0) show exactly zero lateness
    // — the two meters agree on what "clean" means.
    let qqc_rows: Vec<_> = report.measurements.iter().filter(|m| m.qqc_max.is_some()).collect();
    assert!(!qqc_rows.is_empty(), "artifact carries consistency-sweep rows");
    for m in &qqc_rows {
        assert!(m.audited, "qqc rows are audited rows: {m:?}");
        assert!(m.qqc_mean.expect("qqc_mean") >= 0.0, "{m:?}");
        let f_nl = m.f_nl.expect("f_nl");
        assert!((0.0..=1.0).contains(&f_nl), "{m:?}");
        assert_eq!(
            f_nl == 0.0,
            m.qqc_max == Some(0),
            "F_nl and qqc_max must agree on cleanliness: {m:?}"
        );
    }
    for counter in ["fetch_add", "lock", "compiled", "diffracting", "combining", "relaxed",
                    "elimination"]
    {
        assert!(
            qqc_rows.iter().any(|m| m.counter == counter),
            "consistency sweep covers backend {counter}"
        );
    }
    // Single-threaded runs are totally ordered: zero lateness everywhere.
    for m in qqc_rows.iter().filter(|m| m.threads == 1) {
        assert_eq!(m.qqc_max, Some(0), "single-threaded run must be clean: {m:?}");
    }
    // The headline frontier point: the relaxed counter at the top thread
    // count delivers at least 2x the compiled bitonic network's
    // per-token throughput — the speed it bought with bounded lateness.
    let top = report.measurements.iter().map(|m| m.threads).max().unwrap_or(1).min(8);
    let relaxed = report
        .consistency_cell("relaxed", "-", top)
        .expect("artifact carries the relaxed consistency cell at the top thread count");
    let strict = report
        .cell("compiled", "bitonic", top)
        .expect("artifact carries the compiled bitonic per-token cell");
    assert!(
        relaxed.mops >= 2.0 * strict.mops,
        "relaxed counter must be at least 2x compiled bitonic at {top} threads: \
         {:.2} vs {:.2} Mops/s",
        relaxed.mops,
        strict.mops
    );
    // The v7 audit-sweep acceptance rows: the parallel audit pipeline on
    // the compiled bitonic B(8) at the top thread count. Every sweep row
    // carries its paired retention; the *best* audit mode — on this
    // single-core host that is the 1-in-8 sampling mode, whose skip path
    // is a load, a branch, and a store — retains at least 97% of the
    // un-audited throughput (the ISSUE's floor; target 99%).
    let audit_rows: Vec<_> = report
        .measurements
        .iter()
        .filter(|m| m.audited && m.retention.is_some() && m.counter == "compiled")
        .collect();
    assert!(!audit_rows.is_empty(), "artifact carries audit-sweep rows");
    let top_audit = audit_rows.iter().map(|m| m.threads).max().unwrap_or(1);
    for m in &audit_rows {
        let r = m.retention.expect("retention");
        assert!(r.is_finite() && r > 0.0, "retention must be positive: {m:?}");
        assert!(m.sample_k >= 1, "sample_k is a stride: {m:?}");
    }
    let best = audit_rows
        .iter()
        .filter(|m| m.threads == top_audit)
        .map(|m| m.retention.expect("retention"))
        .fold(0.0f64, f64::max);
    assert!(
        best >= 0.97,
        "best audit-mode row at {top_audit} threads must retain >=97% of the \
         un-audited throughput, got {best:.4}"
    );
    // Sampled rows really sampled: some row carries a stride above 1.
    assert!(
        audit_rows.iter().any(|m| m.sample_k > 1),
        "audit sweep covers the always-on sampling mode"
    );
    // The v4+ fields survive a serialize/deserialize round trip.
    let back: ThroughputReport =
        json::from_str(&json::to_string_pretty(&report)).expect("round-trips");
    assert_eq!(back, report);
}

/// The relaxed backend across the socket: concurrent pipelined clients
/// against a [`RelaxedCounter`]-backed server still receive exactly the
/// multiset `0..total` — relaxation reorders values between clients but
/// never invents, drops, or duplicates one, and the transport preserves
/// that.
#[test]
fn relaxed_backend_over_tcp_hands_out_the_exact_multiset() {
    let threads = 4;
    let ops_per_thread = 2_500;
    let mut server = CounterServer::start(
        "127.0.0.1:0",
        Arc::new(RelaxedCounter::new(8)),
        ServerConfig { max_connections: threads, processes: threads, ..ServerConfig::default() },
    )
    .expect("bind ephemeral loopback port");
    let report = run_loadgen(
        server.local_addr(),
        &LoadGenConfig {
            threads,
            connections: 0,
            ops_per_thread,
            batch: 64,
            mode: LoadGenMode::Pipeline,
            collect_values: true,
            route: false,
        },
    )
    .expect("loadgen completes");
    assert_eq!(report.total_ops, (threads * ops_per_thread) as u64);
    assert_eq!(
        report.is_permutation(),
        Some(true),
        "relaxed values over the wire must be exactly 0..{}",
        report.total_ops
    );
    server.shutdown();
    assert_eq!(server.stats().ops, report.total_ops);
}

/// `next_batch_for` edge cases across the socket: `k = 0` is free (no
/// frame on the wire — the server never even sees a request), `k = 1`
/// is exactly `next_for`, and `k = 65537` (one past the `MAX_BATCH`
/// chunk boundary) splits into two pipelined `NextBatch` frames while
/// still handing out a contiguous range.
#[test]
fn remote_batch_edges_zero_one_and_just_past_the_chunk_boundary() {
    use cnet_net::wire::MAX_BATCH;
    use cnet_runtime::ProcessCounter;

    let mut server = CounterServer::start(
        "127.0.0.1:0",
        Arc::new(FetchAddCounter::new()),
        ServerConfig { max_connections: 1, processes: 1, ..ServerConfig::default() },
    )
    .expect("bind ephemeral loopback port");
    let client = RemoteCounter::connect(server.local_addr(), 1).expect("connect");

    // k = 0: empty result, no request frame, no values consumed.
    assert!(client.next_batch_for(0, 0).is_empty());
    let stats = client.server_stats().expect("stats");
    assert_eq!(stats.ops, 0, "an empty batch must not consume values");
    assert_eq!(stats.batches, 0, "an empty batch must not reach the wire");

    // k = 1: indistinguishable from next_for — the next value in line.
    assert_eq!(client.next_batch_for(0, 1), vec![0]);
    assert_eq!(client.next_for(0), 1);

    // k = MAX_BATCH + 1: two chunks, one contiguous gap-free range.
    let k = MAX_BATCH as usize + 1;
    let values = client.next_batch_for(0, k);
    assert_eq!(values.len(), k);
    assert_eq!(values, (2..2 + k as u64).collect::<Vec<_>>());
    let stats = client.server_stats().expect("stats");
    assert_eq!(stats.ops, k as u64 + 2);
    assert_eq!(stats.batches, 3, "65537 values = full chunk + remainder (+ the k=1 batch)");

    drop(client);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Wire-format fuzzing: decode is total on arbitrary bytes.
// ---------------------------------------------------------------------

mod wire_fuzz {
    use cnet_net::wire::{Request, Response, MAX_BATCH};
    use cnet_util::proptest::prelude::*;

    /// Arbitrary frame payloads (length prefix already stripped), from
    /// empty through a few header-and-bodies' worth of junk.
    fn arbitrary_payload() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(0u32..256, 0usize..72)
            .prop_map(|ws| ws.into_iter().map(|w| w as u8).collect())
    }

    /// Every well-formed frame this side of the protocol can produce,
    /// parameterized enough to cover all opcodes and length fields.
    fn any_frame(seq: u32, pick: u32, n: u32, values: &[u64]) -> Vec<u8> {
        let mut out = Vec::new();
        match pick % 8 {
            0 => Request::Next.encode(seq, &mut out),
            1 => Request::NextBatch { n }.encode(seq, &mut out),
            2 => Request::Stats.encode(seq, &mut out),
            3 => Request::Shutdown.encode(seq, &mut out),
            4 => Response::Value { value: u64::from(n) }.encode(seq, &mut out),
            5 => Response::Batch { values: values.to_vec() }.encode(seq, &mut out),
            6 => Response::Pong.encode(seq, &mut out),
            _ => Response::Bye.encode(seq, &mut out),
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// `decode` is total: random bytes yield `Ok` or a `WireError`,
        /// never a panic, for requests and responses alike.
        #[test]
        fn decode_never_panics_on_arbitrary_payloads(
            payload in arbitrary_payload(),
        ) {
            let _ = Request::decode(&payload);
            let _ = Response::decode(&payload);
        }

        /// Neither does corrupting a single byte of a valid frame, or
        /// truncating it anywhere — the two failure shapes a TCP stream
        /// actually produces.
        #[test]
        fn decode_never_panics_on_corrupted_valid_frames(
            seq in 0u32..u32::MAX,
            pick in 0u32..8,
            n in 0u32..(MAX_BATCH + 2),
            values in prop::collection::vec(0u64..u64::MAX, 0usize..4),
            idx in 0usize..256,
            byte in 0u32..256,
            cut in 0usize..256,
        ) {
            let frame = any_frame(seq, pick, n, &values);
            // The payload is the frame minus its 4-byte length prefix.
            let mut payload = frame[4..].to_vec();
            let _ = Request::decode(&payload);
            let _ = Response::decode(&payload);
            let i = idx % payload.len();
            payload[i] = byte as u8;
            let _ = Request::decode(&payload);
            let _ = Response::decode(&payload);
            let truncated = &payload[..cut % payload.len()];
            let _ = Request::decode(truncated);
            let _ = Response::decode(truncated);
        }

        /// And a clean frame round-trips exactly.
        #[test]
        fn request_frames_round_trip(seq in 0u32..u32::MAX, n in 1u32..MAX_BATCH) {
            let mut out = Vec::new();
            Request::NextBatch { n }.encode(seq, &mut out);
            let decoded = Request::decode(&out[4..]);
            prop_assert_eq!(decoded, Ok((seq, Request::NextBatch { n })));
        }
    }
}

// ---------------------------------------------------------------------
// Incremental-decoder fuzzing: the reactor's FrameDecoder is
// split-invariant and total.
// ---------------------------------------------------------------------

mod decoder_fuzz {
    use cnet_net::wire::{FrameDecoder, Request, Response, WireError, MAX_FRAME};
    use cnet_util::proptest::prelude::*;

    /// A stream of well-formed frames plus the `(seq, payload)` pairs a
    /// correct decoder must recover from it.
    fn frame_stream(seqs: &[u32], shapes: &[u32]) -> (Vec<u8>, Vec<Vec<u8>>) {
        let mut stream = Vec::new();
        let mut payloads = Vec::new();
        for (&seq, &shape) in seqs.iter().zip(shapes) {
            let mut frame = Vec::new();
            match shape % 5 {
                0 => Request::Next.encode(seq, &mut frame),
                1 => Request::NextBatch { n: shape }.encode(seq, &mut frame),
                2 => Response::Value { value: u64::from(shape) }.encode(seq, &mut frame),
                3 => Response::Batch {
                    values: (0..u64::from(shape % 7)).collect(),
                }
                .encode(seq, &mut frame),
                _ => Request::Stats.encode(seq, &mut frame),
            }
            payloads.push(frame[4..].to_vec());
            stream.extend_from_slice(&frame);
        }
        (stream, payloads)
    }

    /// Drains every currently decodable frame into owned payloads.
    fn drain(decoder: &mut FrameDecoder, into: &mut Vec<Vec<u8>>) {
        while let Ok(Some(payload)) = decoder.next_frame() {
            into.push(payload.to_vec());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Splitting the byte stream at *every* position `1..len` — the
        /// arbitrary fragmentation TCP is allowed to produce — yields
        /// exactly the original frames, in order, never duplicated and
        /// never dropped, with the decoder resuming mid-frame exactly
        /// where the first fragment stopped.
        #[test]
        fn decoder_is_split_invariant_at_every_position(
            seqs in prop::collection::vec(0u32..u32::MAX, 1usize..5),
            shapes in prop::collection::vec(0u32..64, 1usize..5),
        ) {
            let n = seqs.len().min(shapes.len());
            let (stream, expected) = frame_stream(&seqs[..n], &shapes[..n]);
            for split in 1..stream.len() {
                let mut decoder = FrameDecoder::new();
                let mut got = Vec::new();
                decoder.extend(&stream[..split]);
                drain(&mut decoder, &mut got);
                decoder.extend(&stream[split..]);
                drain(&mut decoder, &mut got);
                prop_assert_eq!(&got, &expected, "split at {}", split);
                prop_assert_eq!(decoder.buffered(), 0, "split at {}", split);
            }
            // The degenerate fragmentation: one byte at a time.
            let mut decoder = FrameDecoder::new();
            let mut got = Vec::new();
            for b in &stream {
                decoder.extend(std::slice::from_ref(b));
                drain(&mut decoder, &mut got);
            }
            prop_assert_eq!(&got, &expected);
        }

        /// A corrupted length prefix is a sticky `BadLength` error —
        /// reported on every poll, never a panic, never a bogus frame —
        /// and frames decoded *before* the corruption still came out.
        #[test]
        fn corrupted_length_prefixes_error_stickily(
            seqs in prop::collection::vec(0u32..u32::MAX, 1usize..4),
            shapes in prop::collection::vec(0u32..64, 1usize..4),
            bad_pick in 0usize..5,
            junk in prop::collection::vec(0u32..256, 0usize..16),
        ) {
            let bad_len = [0u32, 1, 5, (MAX_FRAME as u32) + 1, u32::MAX][bad_pick];
            let n = seqs.len().min(shapes.len());
            let (mut stream, expected) = frame_stream(&seqs[..n], &shapes[..n]);
            // Append a frame whose length word is out of range, then junk.
            stream.extend_from_slice(&bad_len.to_le_bytes());
            stream.extend(junk.iter().map(|b| *b as u8));
            let mut decoder = FrameDecoder::new();
            decoder.extend(&stream);
            let mut got = Vec::new();
            drain(&mut decoder, &mut got);
            prop_assert_eq!(&got, &expected, "pre-corruption frames all decoded");
            prop_assert_eq!(
                decoder.next_frame(),
                Err(WireError::BadLength(bad_len as usize))
            );
            // Sticky: more bytes do not resynchronize a corrupt stream.
            decoder.extend(&[0u8; 8]);
            prop_assert_eq!(
                decoder.next_frame(),
                Err(WireError::BadLength(bad_len as usize))
            );
        }
    }
}
