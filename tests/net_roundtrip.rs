//! End-to-end service tests: real sockets on an ephemeral loopback port,
//! concurrent client threads, pipelined bursts — checking the counting
//! guarantees (permutation of `0..n`, clean audits for linearizable
//! backends, *counted* violations for counting networks) survive the
//! transport.

use cnet_bench::{Measurement, ThroughputReport};
use cnet_core::trace::StreamingAuditor;
use cnet_net::loadgen::{run_loadgen, LoadGenConfig};
use cnet_net::server::{Backpressure, CounterServer, ServerConfig};
use cnet_net::RemoteCounter;
use cnet_runtime::{drain_remaining, FetchAddCounter, SharedNetworkCounter, TraceRecorder};
use cnet_topology::construct::bitonic;
use cnet_util::json;
use std::sync::Arc;

/// N client threads, each pushing pipelined bursts over its own
/// connection: the values received across the whole run must be exactly
/// the permutation `0..total` — the counting-service contract.
#[test]
fn concurrent_pipelined_clients_receive_a_permutation() {
    let threads = 4;
    let ops_per_thread = 2_500;
    let mut server = CounterServer::start(
        "127.0.0.1:0",
        Arc::new(FetchAddCounter::new()),
        ServerConfig { max_connections: threads, processes: threads, ..ServerConfig::default() },
    )
    .expect("bind ephemeral loopback port");
    let report = run_loadgen(
        server.local_addr(),
        &LoadGenConfig { threads, ops_per_thread, batch: 64, collect_values: true },
    )
    .expect("loadgen completes");
    assert_eq!(report.total_ops, (threads * ops_per_thread) as u64);
    assert_eq!(
        report.is_permutation(),
        Some(true),
        "values over the wire must be exactly 0..{}",
        report.total_ops
    );
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.ops, report.total_ops);
    assert_eq!(stats.total_connections, threads as u64);
    assert_eq!(stats.rejected_connections, 0);
}

/// With the PR 3 recorder attached, a linearizable backend served over
/// TCP audits clean: every increment recorded, zero violations.
#[test]
fn fetch_add_service_audits_clean_across_the_socket() {
    let threads = 4;
    let ops_per_thread = 500;
    let total = threads * ops_per_thread;
    let recorder = Arc::new(TraceRecorder::new(threads, 2 * total));
    let mut server = CounterServer::with_recorder(
        "127.0.0.1:0",
        Arc::new(FetchAddCounter::new()),
        Arc::clone(&recorder),
        ServerConfig { max_connections: threads, processes: threads, ..ServerConfig::default() },
    )
    .expect("bind ephemeral loopback port");
    let report = run_loadgen(
        server.local_addr(),
        &LoadGenConfig { threads, ops_per_thread, batch: 16, collect_values: true },
    )
    .expect("loadgen completes");
    assert_eq!(report.is_permutation(), Some(true));
    server.shutdown(); // joins handlers, which flush their recorder shards
    let mut auditor = StreamingAuditor::new();
    drain_remaining(&recorder, &mut auditor);
    assert_eq!(auditor.operations(), total);
    assert!(auditor.is_clean(), "fetch_add must audit clean: {}", auditor.summary());
}

/// A counting network served over TCP keeps the permutation property, and
/// any consistency violations the concurrency produces are *counted* by
/// the online monitors — never a crash, never a refused response.
#[test]
fn counting_network_violations_are_counted_not_fatal() {
    let fan = 4;
    let threads = 4;
    let ops_per_thread = 500;
    let total = threads * ops_per_thread;
    let recorder = Arc::new(TraceRecorder::new(threads, 2 * total));
    let net = bitonic(fan).expect("power-of-two fan");
    let mut server = CounterServer::with_recorder(
        "127.0.0.1:0",
        Arc::new(SharedNetworkCounter::new(&net)),
        Arc::clone(&recorder),
        ServerConfig { max_connections: threads, processes: fan, ..ServerConfig::default() },
    )
    .expect("bind ephemeral loopback port");
    let report = run_loadgen(
        server.local_addr(),
        &LoadGenConfig { threads, ops_per_thread, batch: 8, collect_values: true },
    )
    .expect("loadgen completes against a counting network");
    assert_eq!(
        report.is_permutation(),
        Some(true),
        "the step property must survive the transport"
    );
    server.shutdown();
    let mut auditor = StreamingAuditor::new();
    drain_remaining(&recorder, &mut auditor);
    assert_eq!(auditor.operations(), total);
    // The monitors report fractions, they do not veto: whatever the
    // interleaving produced is a number in [0, 1], not a panic.
    let f_nl = auditor.f_nl();
    let f_nsc = auditor.f_nsc();
    assert!((0.0..=1.0).contains(&f_nl), "F_nl out of range: {f_nl}");
    assert!((0.0..=1.0).contains(&f_nsc), "F_nsc out of range: {f_nsc}");
    assert_eq!(auditor.non_linearizable() == 0, auditor.is_linearizable());
}

/// At the connection limit with the reject policy, surplus clients get a
/// clean `Busy` refusal surfaced as an error — not a hang, not a panic.
#[test]
fn busy_rejection_surfaces_as_a_client_error() {
    let server = CounterServer::start(
        "127.0.0.1:0",
        Arc::new(FetchAddCounter::new()),
        ServerConfig { max_connections: 1, backpressure: Backpressure::Reject, processes: 1 },
    )
    .expect("bind ephemeral loopback port");
    let holder = RemoteCounter::connect(server.local_addr(), 1).expect("first connection");
    assert_eq!(holder.try_next(0).expect("slot holder is served"), 0);
    let surplus = RemoteCounter::connect(server.local_addr(), 1).expect("TCP accept still works");
    let err = surplus.try_next(0).expect_err("server at capacity must refuse");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused, "{err}");
}

/// The committed benchmark artifact must stay readable by the schema-v2
/// reader — including rows that predate the `transport` field (absent
/// means `"memory"`) and the new `"tcp"` rows.
#[test]
fn committed_bench_artifact_parses_as_schema_v2() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let text = std::fs::read_to_string(path).expect("BENCH_throughput.json is committed");
    let report: ThroughputReport = json::from_str(&text).expect("artifact parses as schema v2");
    assert_eq!(report.version, 2);
    assert!(!report.measurements.is_empty());
    for m in &report.measurements {
        assert!(
            m.transport == Measurement::TRANSPORT_MEMORY
                || m.transport == Measurement::TRANSPORT_TCP,
            "unknown transport {:?}",
            m.transport
        );
        assert!(m.mops > 0.0);
    }
}
