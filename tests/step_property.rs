//! Sequential (one-token-at-a-time) executions of the two classic
//! constructions, checked end to end: `topology::construct` builds the
//! network, `sim::exec` runs it, and the produced step sequence must satisfy
//! the step property and gap-free counting.

use cnet_sim::engine::run;
use cnet_sim::ids::ProcessId;
use cnet_sim::spec::TimedTokenSpec;
use cnet_sim::validate::validate;
use cnet_topology::construct::{bitonic, periodic};
use cnet_topology::state::has_step_property;
use cnet_topology::Network;

/// One token at a time, round-robin over the inputs: token `k` enters on
/// wire `k mod 4` in its own disjoint time window.
fn sequential_specs(net: &Network, tokens: usize) -> Vec<TimedTokenSpec> {
    (0..tokens)
        .map(|k| {
            TimedTokenSpec::lock_step(
                ProcessId(k),
                k % net.fan_in(),
                10.0 * k as f64,
                1.0,
                net.depth(),
            )
        })
        .collect()
}

fn check_sequential(net: &Network, tokens: usize) {
    let specs = sequential_specs(net, tokens);
    let exec = run(net, &specs).unwrap();

    // The executor produced a non-empty, time-ordered step sequence with one
    // COUNT step per token.
    assert_eq!(exec.records().len(), tokens);
    assert!(exec.steps().len() >= tokens);
    assert!(exec
        .steps()
        .windows(2)
        .all(|w| w[0].time <= w[1].time));

    // Every prefix of a sequential execution is quiescent between tokens, so
    // the output counts after all tokens must have the step property...
    let mut counts = vec![0u64; net.fan_out()];
    for r in exec.records() {
        counts[r.sink] += 1;
    }
    assert!(has_step_property(&counts), "{counts:?}");

    // ...and the independent validator must accept the whole trace.
    let summary = validate(net, &exec).unwrap();
    assert_eq!(summary.tokens, tokens as u64);

    // Values are handed out gap-free, in order for a serialized schedule.
    let values = exec.values();
    assert_eq!(values, (0..tokens as u64).collect::<Vec<_>>());
}

#[test]
fn bitonic_4_sequential_execution_counts() {
    let net = bitonic(4).unwrap();
    assert_eq!(net.depth(), 3);
    for tokens in [1, 4, 9] {
        check_sequential(&net, tokens);
    }
}

#[test]
fn periodic_4_sequential_execution_counts() {
    let net = periodic(4).unwrap();
    for tokens in [1, 4, 9] {
        check_sequential(&net, tokens);
    }
}
