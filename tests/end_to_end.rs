//! End-to-end integration tests: topology → simulation → consistency
//! analysis, asserting the paper's quantitative claims across crates.

use cnet_core::conditions::TimingCondition;
use cnet_core::consistency::{is_linearizable, is_sequentially_consistent};
use cnet_core::fractions::{
    non_linearizability_fraction, non_sequential_consistency_fraction,
};
use cnet_core::op::Op;
use cnet_core::theory;
use cnet_sim::adversary::{bitonic_three_wave, holding_race, three_wave};
use cnet_sim::engine::run;
use cnet_sim::ids::ProcessId;
use cnet_sim::timing::TimingParams;
use cnet_sim::transform::desequentialize;
use cnet_sim::workload::{generate, WorkloadConfig};
use cnet_topology::construct::{bitonic, counting_tree, periodic};
use cnet_topology::Network;

fn exec_ops(net: &Network, specs: &[cnet_sim::TimedTokenSpec]) -> Vec<Op> {
    Op::from_execution(&run(net, specs).expect("valid schedule"))
}

#[test]
fn ratio_at_most_two_implies_both_conditions_on_all_classic_networks() {
    // LSST99 Cor 3.10 + Theorem 3.2: under ratio <= 2 every random schedule
    // is linearizable AND sequentially consistent.
    for net in [bitonic(8).unwrap(), periodic(8).unwrap(), counting_tree(8).unwrap()] {
        let cfg = WorkloadConfig {
            processes: 6,
            tokens_per_process: 4,
            c_min: 1.0,
            c_max: 2.0,
            local_delay: 0.0,
            start_spread: 4.0,
        };
        for seed in 0..60 {
            let specs = generate(&net, &cfg, seed);
            let exec = run(&net, &specs).unwrap();
            let params = TimingParams::measure(&exec);
            assert!(TimingCondition::RatioAtMostTwo.holds(&params));
            let ops = Op::from_execution(&exec);
            assert!(is_linearizable(&ops), "{net} seed {seed}");
            assert!(is_sequentially_consistent(&ops), "{net} seed {seed}");
        }
    }
}

#[test]
fn global_delay_condition_implies_linearizability() {
    // LSST99 Cor 3.7: whenever the measured C_g exceeds d(c_max - 2 c_min),
    // the execution is linearizable.
    let net = bitonic(8).unwrap();
    let cond = TimingCondition::global_delay(&net);
    let mut satisfied = 0;
    for seed in 0..150 {
        let cfg = WorkloadConfig {
            processes: 4,
            tokens_per_process: 3,
            c_min: 1.0,
            c_max: 2.2,
            local_delay: 2.0,
            start_spread: 3.0,
        };
        let specs = generate(&net, &cfg, seed);
        let exec = run(&net, &specs).unwrap();
        let params = TimingParams::measure(&exec);
        if cond.holds(&params) {
            satisfied += 1;
            assert!(is_linearizable(&Op::from_execution(&exec)), "seed {seed}");
        }
    }
    assert!(satisfied > 0, "the scan must exercise the condition");
}

#[test]
fn theorem_4_1_local_delay_guarantees_sc_at_high_asynchrony() {
    for net in [bitonic(8).unwrap(), periodic(8).unwrap()] {
        let needed = net.depth() as f64 * (6.0 - 2.0);
        let cfg = WorkloadConfig {
            processes: 6,
            tokens_per_process: 4,
            c_min: 1.0,
            c_max: 6.0,
            local_delay: needed + 0.01,
            start_spread: 40.0,
        };
        let cond = TimingCondition::local_delay(&net);
        for seed in 0..60 {
            let specs = generate(&net, &cfg, seed);
            let exec = run(&net, &specs).unwrap();
            let params = TimingParams::measure(&exec);
            assert!(cond.holds(&params), "{net} seed {seed}: generator must satisfy the bound");
            assert!(
                is_sequentially_consistent(&Op::from_execution(&exec)),
                "{net} seed {seed}"
            );
        }
    }
}

#[test]
fn corollary_4_5_condition_is_satisfiable_without_linearizability() {
    let net = bitonic(16).unwrap();
    let mut sched = bitonic_three_wave(&net, 1.0, 5.0).unwrap();
    for (i, s) in sched.specs.iter_mut().enumerate() {
        s.process = ProcessId(i);
    }
    let exec = run(&net, &sched.specs).unwrap();
    let params = TimingParams::measure(&exec);
    assert!(TimingCondition::local_delay(&net).holds(&params));
    let ops = Op::from_execution(&exec);
    assert!(!is_linearizable(&ops));
    assert!(is_sequentially_consistent(&ops));
}

#[test]
fn proposition_5_3_exact_one_third_on_every_fan() {
    for w in [4usize, 8, 16, 32, 64] {
        let net = bitonic(w).unwrap();
        let threshold = theory::bitonic_wave_threshold(w);
        let sched = bitonic_three_wave(&net, 1.0, threshold + 0.01).unwrap();
        let ops = exec_ops(&net, &sched.specs);
        assert!((non_linearizability_fraction(&ops) - 1.0 / 3.0).abs() < 1e-9, "w={w}");
        assert!(
            (non_sequential_consistency_fraction(&ops) - 1.0 / 3.0).abs() < 1e-9,
            "w={w}"
        );
    }
}

#[test]
fn theorem_5_11_bounds_achieved_on_both_families() {
    for net in [bitonic(16).unwrap(), periodic(16).unwrap()] {
        for ell in 1..=4usize {
            let probe = three_wave(&net, ell, 1.0, 1000.0).unwrap();
            let sched = three_wave(&net, ell, 1.0, probe.required_ratio + 0.01).unwrap();
            let ops = exec_ops(&net, &sched.specs);
            let f_nl = non_linearizability_fraction(&ops);
            let f_nsc = non_sequential_consistency_fraction(&ops);
            assert!((f_nl - theory::thm_5_11_nl_lower(ell)).abs() < 1e-9, "{net} ell={ell}");
            assert!((f_nsc - theory::thm_5_11_nsc_lower(ell)).abs() < 1e-9, "{net} ell={ell}");
        }
    }
}

#[test]
fn corollaries_5_12_and_5_13_at_top_level() {
    for w in [8usize, 16, 32] {
        let net = bitonic(w).unwrap();
        let ell = theory::classic_split_number(w);
        let sched = three_wave(&net, ell, 1.0, 2.0 + net.depth() as f64).unwrap();
        let ops = exec_ops(&net, &sched.specs);
        assert!(
            (non_linearizability_fraction(&ops) - theory::cor_5_12_nl_lower(w)).abs() < 1e-9,
            "w={w}"
        );
        assert!(
            (non_sequential_consistency_fraction(&ops) - theory::cor_5_12_nsc_lower(w)).abs()
                < 1e-9,
            "w={w}"
        );
    }
}

#[test]
fn theorem_3_2_transformation_round_trip() {
    for w in [8usize, 16] {
        let net = bitonic(w).unwrap();
        let mut sched = bitonic_three_wave(&net, 1.0, 8.0).unwrap();
        for i in sched.wave3.clone() {
            for t in &mut sched.specs[i].step_times {
                *t += 1.0;
            }
        }
        for (i, s) in sched.specs.iter_mut().enumerate() {
            s.process = ProcessId(i);
        }
        let exec = run(&net, &sched.specs).unwrap();
        let ops = Op::from_execution(&exec);
        assert!(!is_linearizable(&ops) && is_sequentially_consistent(&ops));

        let outcome = desequentialize(&net, &sched.specs, &exec).unwrap();
        let new_exec = run(&net, &outcome.specs).unwrap();
        let new_ops = Op::from_execution(&new_exec);
        assert!(!is_sequentially_consistent(&new_ops), "w={w}");

        // Timing parameters preserved to within the documented skew.
        let before = TimingParams::measure(&exec);
        let after = TimingParams::measure(&new_exec);
        assert!((before.c_min.unwrap() - after.c_min.unwrap()).abs() < 1e-3, "w={w}");
        assert!((before.c_max.unwrap() - after.c_max.unwrap()).abs() < 1e-3, "w={w}");
    }
}

#[test]
fn theorem_5_4_waves_respect_the_ceiling() {
    // Any wave configuration whose measured ratio stays below an integer l
    // must keep F_nsc within (l-2)/(l-1).
    let net = bitonic(8).unwrap();
    for ell in 2..=12usize {
        for level in 1..=3usize {
            let probe = three_wave(&net, level, 1.0, 1000.0).unwrap();
            let c_max = ell as f64 - 0.01;
            if c_max < 1.0 {
                continue;
            }
            let sched = three_wave(&net, level, 1.0, c_max).unwrap();
            let exec = run(&net, &sched.specs).unwrap();
            let params = TimingParams::measure(&exec);
            if params.ratio().is_some_and(|r| r < ell as f64) {
                let f = non_sequential_consistency_fraction(&Op::from_execution(&exec));
                assert!(
                    f <= theory::thm_5_4_nsc_upper(ell) + 1e-9,
                    "ell={ell} level={level} ratio_req={}",
                    probe.required_ratio
                );
            }
        }
    }
}

#[test]
fn lemma_4_4_protects_a_paced_process_among_unpaced_ones() {
    use cnet_core::consistency::is_sequentially_consistent_for;
    use cnet_sim::TimedTokenSpec;
    // The three-wave adversary breaks SC for the wave processes; one extra
    // process Q paces itself per Lemma 4.4 and keeps its own values
    // monotone regardless.
    let net = bitonic(8).unwrap();
    let d = net.depth();
    let sched = bitonic_three_wave(&net, 1.0, 4.0).unwrap();
    let mut specs = sched.specs.clone();
    let q = ProcessId(1000);
    // Q's own wire delays are all 1.0 (= c_min^Q); the global c_max is 4,
    // so Lemma 4.4 wants C_L^Q > d (4 - 2) = 2d. Use 2d + 0.1.
    let mut t = 0.05; // desynchronized from the waves
    for _ in 0..5 {
        let spec = TimedTokenSpec::lock_step(q, 5, t, 1.0, d);
        t = spec.exit_time() + 2.0 * d as f64 + 0.1;
        specs.push(spec);
    }
    let exec = run(&net, &specs).unwrap();
    let params = TimingParams::measure(&exec);
    assert!(
        TimingCondition::lemma_4_4_holds_for(d, &params, q),
        "Q's measured parameters must satisfy its per-process condition"
    );
    let ops = Op::from_execution(&exec);
    assert!(!is_sequentially_consistent(&ops), "the wave processes still violate SC");
    assert!(
        is_sequentially_consistent_for(&ops, q.index()),
        "the paced process Q must see monotone values"
    );
}

#[test]
fn holding_race_violates_exactly_above_depth_plus_one() {
    for net in [bitonic(4).unwrap(), periodic(4).unwrap(), counting_tree(8).unwrap()] {
        let d = net.depth() as f64;
        // Above d+1: violation.
        let race = holding_race(&net, 1.0, d + 1.05, true).unwrap();
        let ops = exec_ops(&net, &race.specs);
        assert!(!is_linearizable(&ops), "{net} above");
        assert!(!is_sequentially_consistent(&ops), "{net} above");
        // Below d+1: this schedule shape cannot produce the violation.
        let race = holding_race(&net, 1.0, d + 0.95, true).unwrap();
        let ops = exec_ops(&net, &race.specs);
        assert!(is_linearizable(&ops), "{net} below");
        assert!(is_sequentially_consistent(&ops), "{net} below");
    }
}
