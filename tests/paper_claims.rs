//! One test per numbered structural claim of the paper, evaluated by
//! measurement on the constructed networks (no formulas trusted blindly —
//! the analysis code derives each quantity from the graph).

use cnet_core::theory;
use cnet_topology::analysis::split::split_sequence;
use cnet_topology::analysis::{are_isomorphic, influence_radius, split_depth, Valencies};
use cnet_topology::construct::{block, block_interleaved, bitonic, counting_tree, merger, periodic};

#[test]
fn section_2_6_1_bitonic_depth() {
    for lgw in 1usize..=6 {
        let w = 1 << lgw;
        assert_eq!(bitonic(w).unwrap().depth(), theory::bitonic_depth(w), "B({w})");
        assert_eq!(merger(w).unwrap().depth(), lgw, "M({w})");
    }
}

#[test]
fn section_2_6_2_periodic_depth_and_block_isomorphism() {
    for lgw in 1usize..=4 {
        let w = 1 << lgw;
        assert_eq!(periodic(w).unwrap().depth(), theory::periodic_depth(w), "P({w})");
        assert_eq!(block(w).unwrap().depth(), lgw, "L({w})");
        // Herlihy–Tirthapura: L(w) and M(w) are isomorphic graphs; so are
        // the paper's two block constructions.
        assert!(are_isomorphic(&block(w).unwrap(), &merger(w).unwrap()), "L({w}) ≅ M({w})");
        assert!(
            are_isomorphic(&block(w).unwrap(), &block_interleaved(w).unwrap()),
            "two L({w}) constructions"
        );
    }
}

#[test]
fn section_2_6_3_counting_tree_shape() {
    for lgw in 0usize..=5 {
        let w = 1 << lgw;
        let t = counting_tree(w).unwrap();
        assert_eq!(t.depth(), lgw);
        assert_eq!(t.size(), w - 1);
        assert_eq!(t.fan_in(), 1);
        assert_eq!(t.fan_out(), w);
    }
}

#[test]
fn section_2_5_path_from_every_input_to_every_output() {
    // The observation used throughout: counting networks connect every
    // input wire to every output wire.
    for net in [bitonic(16).unwrap(), periodic(8).unwrap()] {
        let val = Valencies::compute(&net);
        for i in 0..net.fan_in() {
            let v = val.wire(net.source_wire(cnet_topology::ids::SourceId(i)));
            assert_eq!(v.len(), net.fan_out(), "{net} input {i}");
        }
    }
}

#[test]
fn section_2_5_shallowness_equals_depth_iff_uniform() {
    let b8 = bitonic(8).unwrap();
    assert_eq!(b8.shallowness(), b8.depth());
    assert!(b8.is_uniform());
    // A non-uniform network: straight wire next to a balancer.
    let mut lb = cnet_topology::LayeredBuilder::new(3);
    lb.balancer(&[0, 1]);
    let net = lb.finish().unwrap();
    assert!(net.shallowness() < net.depth());
    assert!(!net.is_uniform());
}

#[test]
fn proposition_5_6_bitonic_split_depth() {
    for lgw in 1usize..=6 {
        let w = 1 << lgw;
        let net = bitonic(w).unwrap();
        let val = Valencies::compute(&net);
        assert_eq!(
            split_depth(&net, &val).unwrap(),
            theory::bitonic_split_depth(w),
            "sd(B({w}))"
        );
        let layer = net.layer(theory::bitonic_split_depth(w));
        assert!(val.layer_is_complete(&net, layer));
        assert!(val.layer_is_uniformly_splittable(&net, layer));
    }
}

#[test]
fn proposition_5_8_periodic_split_depth() {
    for lgw in 1usize..=4 {
        let w = 1 << lgw;
        let net = periodic(w).unwrap();
        let val = Valencies::compute(&net);
        assert_eq!(
            split_depth(&net, &val).unwrap(),
            theory::periodic_split_depth(w),
            "sd(P({w}))"
        );
    }
}

#[test]
fn propositions_5_9_and_5_10_split_sequences() {
    for lgw in 1usize..=5 {
        let w = 1 << lgw;
        let seq = split_sequence(&bitonic(w).unwrap()).unwrap();
        assert_eq!(seq.split_number(), lgw, "sp(B({w}))");
        assert!(seq.is_continuously_complete());
        assert!(seq.is_continuously_uniformly_splittable());
    }
    for lgw in 1usize..=4 {
        let w = 1 << lgw;
        let seq = split_sequence(&periodic(w).unwrap()).unwrap();
        assert_eq!(seq.split_number(), lgw, "sp(P({w}))");
        assert!(seq.is_continuously_complete());
        assert!(seq.is_continuously_uniformly_splittable());
    }
}

#[test]
fn table_1_constants_agree_with_structure() {
    // MPT97's necessary threshold d/irad + 1 evaluates to (lg w + 3)/2 on
    // the bitonic network — the same constant as Propositions 5.2/5.3.
    for lgw in 2usize..=6 {
        let w = 1 << lgw;
        let net = bitonic(w).unwrap();
        let irad = influence_radius(&net).unwrap();
        let threshold = net.depth() as f64 / irad as f64 + 1.0;
        assert!(
            (threshold - theory::bitonic_wave_threshold(w)).abs() < 1e-12,
            "B({w}): {threshold}"
        );
    }
    // And to exactly 2 on the counting tree, matching LSST99 Thm 4.1.
    let tree = counting_tree(16).unwrap();
    let irad = influence_radius(&tree).unwrap();
    assert_eq!(tree.depth() as f64 / irad as f64 + 1.0, 2.0);
}

#[test]
fn theorem_5_11_stage_depths_for_the_classics() {
    // d(S^(l)) drives the thresholds; for B(w) the chops walk down the
    // merger: lg w - 1, lg w - 2, ..., 1; for P(w) down the block.
    let seq = split_sequence(&bitonic(32).unwrap()).unwrap();
    for l in 1..seq.split_number() {
        assert_eq!(seq.stage_depth(l), 5 - l, "B(32) stage {l}");
    }
    let seq = split_sequence(&periodic(16).unwrap()).unwrap();
    for l in 1..seq.split_number() {
        assert_eq!(seq.stage_depth(l), 4 - l, "P(16) stage {l}");
    }
}
