//! Property test: the compiled traversal engine is observationally
//! identical to the graph-walking paths it replaced.
//!
//! Over random small counting networks, a deterministic single-threaded
//! token schedule must produce the same value from three independent
//! implementations of the same round-robin balancer semantics:
//!
//! - [`NetworkState::traverse`] — the sequential reference interpreter in
//!   `cnet-topology`;
//! - [`GraphWalkCounter`] — the retained pre-compilation shared-memory
//!   path (per-hop graph lookups, CAS loop);
//! - [`SharedNetworkCounter`] — the compiled engine (flat routing tables,
//!   wait-free `fetch_xor`/`fetch_add` specializations).
//!
//! The harness logs its base seed to stderr on start; rerun a failure
//! deterministically with `CNET_PROPTEST_SEED=<seed>`.

use cnet_runtime::{CompiledNetwork, GraphWalkCounter, SharedNetworkCounter};
use cnet_topology::construct::{random_counting_network, RandomNetworkConfig};
use cnet_topology::state::NetworkState;
use cnet_topology::Network;
use cnet_util::proptest::prelude::*;

/// A strategy over random counting networks of modest size: fans 2..=8,
/// 0..=3 random prefix columns, with and without crossing wires, over
/// either a bitonic or a periodic core.
fn random_network() -> impl Strategy<Value = Network> {
    (1usize..4, 0usize..4, prop::bool::ANY, prop::bool::ANY, 0u64..1_000_000).prop_map(
        |(lgw, prefix_columns, crossing, periodic_core, seed)| {
            let cfg = RandomNetworkConfig {
                fan: 1 << lgw,
                prefix_columns,
                crossing,
                periodic_core,
            };
            random_counting_network(&cfg, seed).expect("valid config")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under an identical deterministic single-threaded schedule, the
    /// compiled engine, the graph walk, and the reference interpreter
    /// hand out exactly the same value on every step.
    #[test]
    fn compiled_graph_walk_and_reference_agree(
        net in random_network(),
        schedule_seed in 0u64..1_000_000,
        tokens in 1usize..80,
    ) {
        let compiled = SharedNetworkCounter::new(&net);
        let walk = GraphWalkCounter::new(&net);
        let mut reference = NetworkState::new(&net);
        // A deterministic pseudo-random input schedule: the same wire
        // sequence is fed to all three implementations.
        let mut x = schedule_seed.wrapping_mul(2).wrapping_add(1);
        for step in 0..tokens {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let input = (x >> 33) as usize % net.fan_in();
            let expect = reference.traverse(&net, input).value;
            prop_assert_eq!(
                compiled.increment_from(input), expect,
                "compiled diverges at step {} on input {} of {}", step, input, net
            );
            prop_assert_eq!(
                walk.increment_from(input), expect,
                "graph walk diverges at step {} on input {} of {}", step, input, net
            );
        }
        prop_assert_eq!(compiled.tokens_counted(), tokens as u64);
    }

    /// Batched traversal is observationally a multiset of sequential
    /// traversals: on a random network under a random mixed schedule of
    /// `(input, k)` batches, every `next_batch_for`-claimed batch hands
    /// out exactly the values `k` sequential reference traversals from
    /// the same state would — the batch may reorder values internally,
    /// never invent or drop one. The first step runs from quiescence.
    #[test]
    fn batched_traversal_equals_sequential_multisets(
        net in random_network(),
        schedule_seed in 0u64..1_000_000,
        steps in 1usize..20,
    ) {
        let batched = SharedNetworkCounter::new(&net);
        let mut reference = NetworkState::new(&net);
        let mut x = schedule_seed.wrapping_mul(2).wrapping_add(1);
        let mut values = Vec::new();
        let mut total = 0u64;
        for step in 0..steps {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let input = (x >> 33) as usize % net.fan_in();
            let k = 1 + (x >> 17) as usize % 9;
            let mut expect: Vec<u64> =
                (0..k).map(|_| reference.traverse(&net, input).value).collect();
            values.clear();
            batched.increment_batch_from(input, k, &mut values);
            values.sort_unstable();
            expect.sort_unstable();
            prop_assert_eq!(
                &values, &expect,
                "batch of {} diverges at step {} on input {} of {}", k, step, input, net
            );
            total += k as u64;
        }
        prop_assert_eq!(batched.tokens_counted(), total);
    }

    /// The trait-level batched path agrees too: `next_batch_for` on one
    /// counter claims the same multiset as `n` `next_for` calls on an
    /// identically scheduled twin.
    #[test]
    fn next_batch_for_matches_sequential_next_for(
        net in random_network(),
        schedule_seed in 0u64..1_000_000,
        steps in 1usize..12,
    ) {
        use cnet_runtime::ProcessCounter;
        let batched = SharedNetworkCounter::new(&net);
        let sequential = SharedNetworkCounter::new(&net);
        let mut x = schedule_seed.wrapping_mul(2).wrapping_add(1);
        for step in 0..steps {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let process = (x >> 33) as usize % net.fan_in();
            let k = 1 + (x >> 17) as usize % 7;
            let mut via_batch = batched.next_batch_for(process, k);
            let mut via_singles: Vec<u64> =
                (0..k).map(|_| sequential.next_for(process)).collect();
            via_batch.sort_unstable();
            via_singles.sort_unstable();
            prop_assert_eq!(
                &via_batch, &via_singles,
                "trait batch of {} diverges at step {} as process {} on {}",
                k, step, process, net
            );
        }
    }

    /// The compiled tables themselves agree with the graph: routing a
    /// token with forced port choices lands on the same counter the wire
    /// graph reaches, for every input and any fixed port bias.
    #[test]
    fn compiled_tables_cover_every_input(
        net in random_network(),
        bias in 0usize..8,
    ) {
        let engine = CompiledNetwork::compile(&net);
        prop_assert_eq!(engine.fan_in(), net.fan_in());
        prop_assert_eq!(engine.fan_out(), net.fan_out());
        for input in 0..net.fan_in() {
            let sink = engine.route(input, |_, f| bias % f);
            prop_assert!(sink < net.fan_out());
        }
    }
}
