//! Exhaustive bounded-interleaving model checking of the lock-free core.
//!
//! Built only with `--features model-check` (see `crates/bench/Cargo.toml`);
//! plain `cargo test` skips this target. Each scenario wraps a lock-free
//! algorithm from `cnet-runtime` in `cnet_util::model::explore`, which
//! enumerates *every* schedule of its logical threads up to a preemption
//! bound — the invariants here hold in all of them, not just the lucky
//! interleavings a stress test happens to sample.
//!
//! The four scenarios from the issue:
//!   1. two-thread B(4) compiled traversal — gap-free values and the step
//!      property in the final quiescent state of every schedule;
//!   2. three-thread combining funnel — every caller exactly one value,
//!      none duplicated or lost, and the served-then-won-lock race both
//!      reachable and handled;
//!   3. two-writer/one-drainer trace recorder — drained intervals always
//!      contain the true operation, so widening never fabricates a
//!      precedence the monitors would rely on;
//!   4. batched traversal vs. sequential traversals — multiset equality
//!      of claimed values under all schedules.
//!
//! `cnet_topology::state::NetworkState` is the sequential oracle here (it
//! holds no atomics, so there is nothing in it to model-check — the
//! issue's migration list notwithstanding); `has_step_property` checks
//! the quiescent counts the scenarios produce.
//!
//! Schedule counts are asserted per scenario and must total >= 10,000
//! across the four (see `EXPERIMENTS.md`). Run with `--nocapture` to see
//! the per-scenario counts.

use cnet_core::trace::{EventMerger, OpEvent};
use cnet_runtime::combine::model_bugs;
use cnet_runtime::{
    CombiningFunnel, FetchAddCounter, ProcessCounter, SharedNetworkCounter,
    TraceRecorder,
};
use cnet_topology::construct::bitonic;
use cnet_topology::state::has_step_property;
use cnet_util::model;
use std::collections::HashMap;
// Bookkeeping for invariant checks deliberately uses std atomics and
// mutexes, NOT the shims: the model's threads are serialized, so these
// never block, and they must not add scheduling points of their own.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Serializes the tests that flip `model_bugs::SKIP_SERVED_RECHECK`
/// against the other funnel scenarios in this binary.
static FUNNEL_FLAG: Mutex<()> = Mutex::new(());

fn funnel_flag_guard() -> std::sync::MutexGuard<'static, ()> {
    FUNNEL_FLAG.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------
// Scenario 1: two threads, two tokens each, through a compiled B(4).
// ---------------------------------------------------------------------

struct TraversalState {
    counter: SharedNetworkCounter,
    values: Mutex<Vec<u64>>,
}

#[test]
fn traversal_b4_step_property_under_all_schedules() {
    const THREADS: usize = 2;
    const PER_THREAD: usize = 2;
    let stats = model::explore(
        THREADS,
        5,
        || {
            let net = bitonic(4).expect("B(4) builds");
            TraversalState {
                counter: SharedNetworkCounter::new(&net),
                values: Mutex::new(Vec::new()),
            }
        },
        |s, tid| {
            for _ in 0..PER_THREAD {
                let v = s.counter.increment_from(tid);
                s.values.lock().unwrap().push(v);
            }
        },
        |s| {
            let mut values = s.values.lock().unwrap().clone();
            values.sort_unstable();
            let n = (THREADS * PER_THREAD) as u64;
            assert_eq!(
                values,
                (0..n).collect::<Vec<_>>(),
                "values must be gap-free and duplicate-free"
            );
            let counts = s.counter.output_counts();
            assert!(
                has_step_property(&counts),
                "quiescent counts {counts:?} violate the step property"
            );
            assert_eq!(s.counter.tokens_counted(), n);
        },
    );
    eprintln!(
        "model_check: traversal_b4: {} schedules, {} points, depth {}",
        stats.schedules, stats.points, stats.max_depth
    );
    assert!(
        stats.schedules >= 2_000,
        "expected >= 2000 schedules, got {}",
        stats.schedules
    );
}

// ---------------------------------------------------------------------
// Scenario 2: three threads through a combining funnel.
// ---------------------------------------------------------------------

struct FunnelState {
    funnel: CombiningFunnel<FetchAddCounter>,
    values: Mutex<Vec<u64>>,
}

fn funnel_state() -> FunnelState {
    FunnelState {
        funnel: CombiningFunnel::new(FetchAddCounter::new(), 3),
        values: Mutex::new(Vec::new()),
    }
}

fn funnel_run(s: &FunnelState, tid: usize) {
    let v = s.funnel.next_for(tid);
    s.values.lock().unwrap().push(v);
}

fn funnel_check(s: &FunnelState) {
    let mut values = s.values.lock().unwrap().clone();
    values.sort_unstable();
    assert_eq!(
        values,
        vec![0, 1, 2],
        "each caller must get exactly one value, none duplicated or lost"
    );
    assert_eq!(s.funnel.combined_ops(), 3);
}

#[test]
fn funnel_exactly_once_and_race_reachable_under_all_schedules() {
    let _guard = funnel_flag_guard();
    let race_hits = AtomicU64::new(0);
    let widest = AtomicU64::new(0);
    let stats = model::explore(3, 2, funnel_state, funnel_run, |s| {
        funnel_check(s);
        race_hits.fetch_add(s.funnel.served_then_won_lock(), Ordering::Relaxed);
        widest.fetch_max(s.funnel.widest_batch(), Ordering::Relaxed);
    });
    eprintln!(
        "model_check: funnel_3thread: {} schedules, {} points, depth {}, \
         served-then-won-lock hits {}, widest batch {}",
        stats.schedules,
        stats.points,
        stats.max_depth,
        race_hits.load(Ordering::Relaxed),
        widest.load(Ordering::Relaxed)
    );
    // The PR 5 race — a caller wins the combiner lock after a previous
    // combiner already served its slot — must be reachable (and, per
    // funnel_check, handled) within this bound.
    assert!(
        race_hits.load(Ordering::Relaxed) > 0,
        "served-then-won-lock race was never exercised — bound too small?"
    );
    // Real combining must also occur in some schedule.
    assert!(widest.load(Ordering::Relaxed) >= 2);
    assert!(
        stats.schedules >= 3_000,
        "expected >= 3000 schedules, got {}",
        stats.schedules
    );
}

// ---------------------------------------------------------------------
// Scenario 3: two recorder writers and a concurrent drainer.
// ---------------------------------------------------------------------

struct RecorderState {
    rec: TraceRecorder,
    merger: Mutex<EventMerger>,
    sink: Mutex<Vec<OpEvent>>,
    /// Global event-order counter: bumped at each true operation's start
    /// and completion, giving the reference order the recorded intervals
    /// must never contradict.
    seq: AtomicU64,
    /// value -> (start seq, completion seq) of the true operation.
    spans: Mutex<HashMap<u64, (u64, u64)>>,
}

const WRITERS: usize = 2;
const OPS_PER_WRITER: u64 = 3;

fn recorder_state() -> RecorderState {
    RecorderState {
        rec: TraceRecorder::new(WRITERS, 4),
        merger: Mutex::new(EventMerger::new(WRITERS)),
        sink: Mutex::new(Vec::new()),
        seq: AtomicU64::new(0),
        spans: Mutex::new(HashMap::new()),
    }
}

fn recorder_run(s: &RecorderState, tid: usize) {
    if tid < WRITERS {
        for i in 0..OPS_PER_WRITER {
            let value = tid as u64 * 100 + i;
            // The true operation happens-before its record() call; both
            // marks land before the recorder is involved at all.
            let start = s.seq.fetch_add(1, Ordering::Relaxed);
            let end = s.seq.fetch_add(1, Ordering::Relaxed);
            s.spans.lock().unwrap().insert(value, (start, end));
            assert!(s.rec.record(tid, value), "ring must not overflow");
        }
        s.rec.flush(tid);
    } else {
        // The drainer races the writers: partial drains must stay sound.
        for _ in 0..2 {
            let mut merger = s.merger.lock().unwrap();
            s.rec.drain_into(&mut merger);
            merger.drain_into(&mut *s.sink.lock().unwrap());
        }
    }
}

fn recorder_check(s: &RecorderState) {
    let mut merger = s.merger.lock().unwrap();
    s.rec.drain_into(&mut merger);
    for shard in 0..WRITERS {
        merger.finish(shard);
    }
    let mut sink = s.sink.lock().unwrap();
    merger.drain_into(&mut *sink);
    assert_eq!(s.rec.dropped(), 0);

    let mut values: Vec<u64> = sink.iter().map(|e| e.value).collect();
    values.sort_unstable();
    let expected: Vec<u64> = (0..WRITERS as u64)
        .flat_map(|w| (0..OPS_PER_WRITER).map(move |i| w * 100 + i))
        .collect();
    assert_eq!(values, expected, "every recorded op drained exactly once");

    let spans = s.spans.lock().unwrap();
    for e in sink.iter() {
        assert!(e.enter_ns <= e.exit_ns, "malformed interval {e:?}");
    }
    // Soundness: a recorded precedence must be a true precedence. The
    // recorded interval only *widens* the true operation, so if the
    // monitors would conclude "a completely precedes b", the true spans
    // must agree — widening may lose precedences, never invent them.
    for a in sink.iter() {
        for b in sink.iter() {
            if a.completely_precedes(b) {
                let (_, a_end) = spans[&a.value];
                let (b_start, _) = spans[&b.value];
                assert!(
                    a_end < b_start,
                    "recorded order fabricated a precedence: {} (true end \
                     {a_end}) recorded before {} (true start {b_start})",
                    a.value,
                    b.value
                );
            }
        }
    }
}

#[test]
fn recorder_drained_intervals_contain_true_ops_under_all_schedules() {
    let stats =
        model::explore(WRITERS + 1, 2, recorder_state, recorder_run, recorder_check);
    eprintln!(
        "model_check: recorder_2w1d: {} schedules, {} points, depth {}",
        stats.schedules, stats.points, stats.max_depth
    );
    assert!(
        stats.schedules >= 10_000,
        "expected >= 10000 schedules, got {}",
        stats.schedules
    );
}

// ---------------------------------------------------------------------
// Scenario 4: one batched traversal vs. k sequential traversals.
// ---------------------------------------------------------------------

struct BatchState {
    counter: SharedNetworkCounter,
    values: Mutex<Vec<u64>>,
}

#[test]
fn batched_traversal_equals_sequential_multiset_under_all_schedules() {
    const K: usize = 3;
    let stats = model::explore(
        2,
        5,
        || {
            let net = bitonic(4).expect("B(4) builds");
            BatchState {
                counter: SharedNetworkCounter::new(&net),
                values: Mutex::new(Vec::new()),
            }
        },
        |s, tid| {
            if tid == 0 {
                // One width-K batched traversal: at most one atomic per
                // balancer for the whole batch.
                let mut out = Vec::new();
                s.counter.increment_batch_from(0, K, &mut out);
                assert_eq!(out.len(), K);
                s.values.lock().unwrap().extend(out);
            } else {
                // K sequential single-token traversals racing it.
                for _ in 0..K {
                    let v = s.counter.increment_from(1);
                    s.values.lock().unwrap().push(v);
                }
            }
        },
        |s| {
            let mut values = s.values.lock().unwrap().clone();
            values.sort_unstable();
            let n = 2 * K as u64;
            assert_eq!(
                values,
                (0..n).collect::<Vec<_>>(),
                "batched + sequential traversals must claim the same \
                 multiset as 2K sequential ones"
            );
            let counts = s.counter.output_counts();
            assert!(
                has_step_property(&counts),
                "quiescent counts {counts:?} violate the step property"
            );
        },
    );
    eprintln!(
        "model_check: batch_vs_sequential: {} schedules, {} points, depth {}",
        stats.schedules, stats.points, stats.max_depth
    );
    assert!(
        stats.schedules >= 1_000,
        "expected >= 1000 schedules, got {}",
        stats.schedules
    );
}

// ---------------------------------------------------------------------
// Seeded bug: the checker must catch a deliberately broken funnel.
// ---------------------------------------------------------------------

/// Restores the seeded-bug flag even if the test panics.
struct BugFlagGuard;

impl BugFlagGuard {
    fn seed() -> BugFlagGuard {
        model_bugs::SKIP_SERVED_RECHECK.store(true, Ordering::SeqCst);
        BugFlagGuard
    }
}

impl Drop for BugFlagGuard {
    fn drop(&mut self) {
        model_bugs::SKIP_SERVED_RECHECK.store(false, Ordering::SeqCst);
    }
}

#[test]
fn seeded_missing_recheck_bug_is_caught_with_replay_string() {
    let _guard = funnel_flag_guard();
    let failure = {
        let _bug = BugFlagGuard::seed();
        model::try_explore(3, 2, funnel_state, funnel_run, funnel_check)
            .expect_err("dropping the own-slot-DONE recheck must be caught")
    };
    eprintln!(
        "model_check: seeded bug caught after {} clean schedules\n  \
         message: {}\n  replay:  {}",
        failure.schedules, failure.message, failure.replay
    );
    assert!(failure.replay.starts_with("v1:3:2:"));
    // The replay string reproduces the counterexample deterministically
    // while the bug is seeded...
    {
        let _bug = BugFlagGuard::seed();
        assert!(
            model::replay(&failure.replay, funnel_state, funnel_run, funnel_check)
                .is_err(),
            "replay must reproduce the seeded failure"
        );
    }
    // ...and the correct funnel passes the very same schedule.
    assert_eq!(
        model::replay(&failure.replay, funnel_state, funnel_run, funnel_check),
        Ok(()),
        "the fixed funnel must survive the counterexample schedule"
    );
}

// ---------------------------------------------------------------------
// Pinned regression schedules (the PR 1 proptest-regressions convention:
// counterexamples found during development stay as explicit tests).
// ---------------------------------------------------------------------

/// The first schedule (in DFS order) on which a funnel caller is served
/// by a previous combiner and *then* wins the combiner lock — the PR 5
/// race the own-slot-DONE recheck exists for, and the very interleaving
/// the seeded-bug test corrupts. Harvested by exploring with a check
/// that trips when `served_then_won_lock() > 0`. Pinned so this exact
/// interleaving keeps passing against the correct funnel without
/// re-exploring.
const PINNED_FUNNEL_RACE_REPLAY: &str =
    "v1:3:2:0.0.0.0.0.0.0.0.0.0.0.0.1.1.1.1.1.2.2.2.1";

#[test]
fn pinned_funnel_race_schedule_stays_handled() {
    let _guard = funnel_flag_guard();
    let race_hits = AtomicU64::new(0);
    let result = model::replay(
        PINNED_FUNNEL_RACE_REPLAY,
        funnel_state,
        funnel_run,
        |s| {
            funnel_check(s);
            race_hits
                .fetch_add(s.funnel.served_then_won_lock(), Ordering::Relaxed);
        },
    );
    assert_eq!(result, Ok(()), "pinned counterexample schedule regressed");
    assert!(
        race_hits.load(Ordering::Relaxed) > 0,
        "pinned schedule no longer reaches the served-then-won-lock path"
    );
}

// ---------------------------------------------------------------------
// Total coverage: the four scenarios must explore >= 10,000 schedules.
// ---------------------------------------------------------------------

#[test]
fn total_explored_schedules_meet_the_floor() {
    // Each scenario test asserts its own per-scenario minimum; this
    // checks that those floors together clear the issue's 10,000-
    // schedule total, so weakening one of them cannot silently drop
    // overall coverage. (Measured counts are much higher: ~2.7k +
    // ~4.9k + ~23.7k + ~3.8k ≈ 35k schedules; see EXPERIMENTS.md.)
    let floors = [2_000u64, 3_000, 10_000, 1_000];
    let total: u64 = floors.iter().sum();
    assert!(
        total >= 10_000,
        "per-scenario floors no longer reach the documented total"
    );
}


// ---------------------------------------------------------------------
// The n == 0 batch contract, proven rather than assumed: under the
// model every shim atomic op and lock acquisition is a scheduling
// point, so "an empty batch touches no shared state" is equivalent to
// "the execution has zero op points".
// ---------------------------------------------------------------------

#[test]
fn empty_batches_create_no_scheduling_points() {
    let stats = model::explore(
        1,
        0,
        || {
            let net = bitonic(4).expect("B(4) builds");
            (
                cnet_runtime::FetchAddCounter::new(),
                cnet_runtime::LockCounter::new(),
                SharedNetworkCounter::new(&net),
            )
        },
        |s, _tid| {
            assert!(s.0.next_batch_for(0, 0).is_empty());
            assert!(s.1.next_batch_for(0, 0).is_empty());
            assert!(s.2.next_batch_for(0, 0).is_empty());
        },
        |_s| {},
    );
    // The lone thread parks exactly once (its finish point); any atomic
    // fetch_add, lock acquisition, or balancer CAS would add op points.
    assert_eq!(
        stats.points, 1,
        "an empty batch must not touch an atomic or a lock"
    );
}

/// k = 1 through the batched path claims exactly the value `next_for`
/// would have: the two paths stay interchangeable under every
/// interleaving of a concurrent single-token caller.
#[test]
fn batch_of_one_is_next_for_under_all_schedules() {
    let stats = model::explore(
        2,
        2,
        || {
            let net = bitonic(4).expect("B(4) builds");
            (SharedNetworkCounter::new(&net), Mutex::new(Vec::new()))
        },
        |s, tid| {
            if tid == 0 {
                let batch = s.0.next_batch_for(0, 1);
                assert_eq!(batch.len(), 1);
                s.1.lock().unwrap().push(batch[0]);
            } else {
                let v = s.0.next_for(1);
                s.1.lock().unwrap().push(v);
            }
        },
        |s| {
            let mut values = s.1.lock().unwrap().clone();
            values.sort_unstable();
            assert_eq!(values, vec![0, 1]);
        },
    );
    eprintln!(
        "model_check: batch_of_one: {} schedules, {} points",
        stats.schedules, stats.points
    );
}

// ---------------------------------------------------------------------
// Elimination exchange: two threads, one token each, one slot. The
// partner pays the waiter out of a width-2 batched traversal, so the
// pair must land exactly the values {0, 1} — no value invented for the
// waiter, none lost when a retract races a claim. Every interleaving of
// the CAS protocol (offer, spin, retract-vs-claim, payment) is explored,
// including the tight race where the waiter's retract CAS fails because
// the partner just committed: the waiter is then *obligated* to take the
// payment, and exactly-once hinges on it.
// ---------------------------------------------------------------------

#[test]
fn elimination_exchange_is_exactly_once_under_all_schedules() {
    use cnet_runtime::EliminationCounter;
    // Reachability across schedules (std atomics: bookkeeping only).
    let eliminated_reached = AtomicU64::new(0);
    let fell_through_reached = AtomicU64::new(0);
    let stats = model::explore(
        2,
        3,
        || {
            let net = bitonic(2).expect("B(2) builds");
            (EliminationCounter::new(&net, 1), Mutex::new(Vec::new()))
        },
        |s, tid| {
            let v = s.0.next_for(tid);
            s.1.lock().unwrap().push(v);
        },
        |s| {
            let mut values = s.1.lock().unwrap().clone();
            values.sort_unstable();
            assert_eq!(values, vec![0, 1], "exchange must hand out exactly {{0, 1}}");
            let (eliminated, fell_through) = s.0.elimination_stats();
            assert_eq!(
                eliminated + fell_through,
                2,
                "every token is eliminated or falls through, never both or neither"
            );
            assert!(eliminated % 2 == 0, "eliminations happen in pairs");
            eliminated_reached.fetch_add(eliminated, Ordering::Relaxed);
            fell_through_reached.fetch_add(fell_through, Ordering::Relaxed);
        },
    );
    eprintln!(
        "model_check: elimination_exchange: {} schedules, {} points, depth {}",
        stats.schedules, stats.points, stats.max_depth
    );
    assert!(
        stats.schedules >= 500,
        "expected >= 500 schedules, got {}",
        stats.schedules
    );
    assert!(
        eliminated_reached.load(Ordering::Relaxed) > 0,
        "some schedule must exercise the elimination (pairing) path"
    );
    assert!(
        fell_through_reached.load(Ordering::Relaxed) > 0,
        "some schedule must exercise the toggle fallback path"
    );
}

// ---------------------------------------------------------------------
// Scenario 5: two recorder writers and two shard-stealing auditors —
// the parallel audit pipeline's steal path under all bounded schedules.
// ---------------------------------------------------------------------

struct StealState {
    rec: TraceRecorder,
    /// One monitor per shard, each owned (locked) by its stealer — the
    /// one-puller-per-shard contract, made explicit.
    monitors: [Mutex<cnet_core::trace::ShardMonitor>; 2],
    /// Every stolen event, for the precedence-soundness sweep.
    stolen: Mutex<Vec<cnet_core::trace::RawOp>>,
    seq: AtomicU64,
    spans: Mutex<HashMap<u64, (u64, u64)>>,
}

const STEAL_OPS: u64 = 2;

fn steal_state() -> StealState {
    StealState {
        rec: TraceRecorder::new(2, 4),
        monitors: [
            Mutex::new(cnet_core::trace::ShardMonitor::new(0)),
            Mutex::new(cnet_core::trace::ShardMonitor::new(1)),
        ],
        stolen: Mutex::new(Vec::new()),
        seq: AtomicU64::new(0),
        spans: Mutex::new(HashMap::new()),
    }
}

fn steal_pull(s: &StealState, shard: usize) {
    let mut mon = s.monitors[shard].lock().unwrap();
    s.rec.pull_shard(shard, |enter_ns, exit_ns, value| {
        let op = cnet_core::trace::RawOp { process: shard, enter_ns, exit_ns, value };
        s.stolen.lock().unwrap().push(op);
        mon.observe(op);
    });
}

fn steal_run(s: &StealState, tid: usize) {
    if tid < 2 {
        for i in 0..STEAL_OPS {
            let value = tid as u64 * 100 + i;
            let start = s.seq.fetch_add(1, Ordering::Relaxed);
            let end = s.seq.fetch_add(1, Ordering::Relaxed);
            s.spans.lock().unwrap().insert(value, (start, end));
            assert!(s.rec.record(tid, value), "ring must not overflow");
        }
        s.rec.flush(tid);
    } else {
        // Stealer `tid - 2` owns shard `tid - 2` and races its writer:
        // partial steals must observe only published, well-formed events.
        for _ in 0..2 {
            steal_pull(s, tid - 2);
        }
    }
}

fn steal_check(s: &StealState) {
    // Writers are quiescent here: settle and take the final frontiers,
    // exactly the post-shutdown merge the serve pipeline performs.
    let mut merged = cnet_core::trace::MergeAuditor::new(2);
    for shard in 0..2 {
        s.rec.flush(shard);
        steal_pull(s, shard);
        merged.ingest(s.monitors[shard].lock().unwrap().take_frontier(true));
    }
    merged.merge();
    assert_eq!(s.rec.dropped(), 0, "no schedule may overflow the ring");
    let total = 2 * STEAL_OPS as usize;
    assert_eq!(
        merged.operations(),
        total,
        "every recorded op reaches the merged auditor exactly once"
    );
    let observed: usize = merged.shard_stats().iter().map(|st| st.observed).sum();
    assert_eq!(observed, total, "per-shard coverage accounting is exact");
    // Per-shard streams are per-writer: program order survives the steal,
    // so the merged history must be sequentially consistent.
    assert!(
        merged.auditor().is_sequentially_consistent(),
        "stealing fabricated a same-process inversion"
    );
    // Soundness: any precedence the merged auditor could conclude from
    // the stolen intervals must be a true precedence — stealing early,
    // late, or mid-batch only ever widens, never fabricates.
    let stolen = s.stolen.lock().unwrap();
    let mut values: Vec<u64> = stolen.iter().map(|op| op.value).collect();
    values.sort_unstable();
    let expected: Vec<u64> =
        (0..2u64).flat_map(|w| (0..STEAL_OPS).map(move |i| w * 100 + i)).collect();
    assert_eq!(values, expected, "every op stolen exactly once");
    let spans = s.spans.lock().unwrap();
    for a in stolen.iter() {
        assert!(a.enter_ns <= a.exit_ns, "malformed stolen interval {a:?}");
        for b in stolen.iter() {
            // The monitors' strict precedence rule: exit before enter.
            if a.exit_ns < b.enter_ns {
                let (_, a_end) = spans[&a.value];
                let (b_start, _) = spans[&b.value];
                assert!(
                    a_end < b_start,
                    "steal fabricated a precedence: {} (true end {a_end}) \
                     stolen before {} (true start {b_start})",
                    a.value,
                    b.value
                );
            }
        }
    }
}

#[test]
fn parallel_steal_pipeline_is_exact_under_all_schedules() {
    let stats = model::explore(4, 2, steal_state, steal_run, steal_check);
    eprintln!(
        "model_check: steal_2w2s: {} schedules, {} points, depth {}",
        stats.schedules, stats.points, stats.max_depth
    );
    assert!(
        stats.schedules >= 2_000,
        "expected >= 2000 schedules, got {}",
        stats.schedules
    );
}
