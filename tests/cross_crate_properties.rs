//! Cross-crate property-based tests: random networks, random schedules,
//! and the invariants that must survive their composition.

use cnet_core::consistency::{is_linearizable, is_sequentially_consistent};
use cnet_core::fractions::{
    non_linearizable_ops, non_sequentially_consistent_ops,
};
use cnet_core::op::Op;
use cnet_sim::engine::run;
use cnet_sim::spec::TimedTokenSpec;
use cnet_sim::workload::{generate, WorkloadConfig};
use cnet_sim::TimingParams;
use cnet_topology::construct::{bitonic, cascade, counting_tree, periodic};
use cnet_topology::state::{has_step_property, NetworkState};
use cnet_topology::Network;
use cnet_util::proptest::prelude::*;

/// A strategy over the classic counting networks.
fn classic_network() -> impl Strategy<Value = Network> {
    (0usize..3, 1usize..4).prop_map(|(family, lgw)| {
        let w = 1 << lgw;
        match family {
            0 => bitonic(w).unwrap(),
            1 => periodic(w).unwrap(),
            _ => counting_tree(w).unwrap(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the schedule, an execution hands out exactly 0..n.
    #[test]
    fn values_are_always_gap_free(
        net in classic_network(),
        seed in 0u64..1000,
        processes in 1usize..6,
        tokens in 1usize..6,
        ratio in 1.0f64..20.0,
    ) {
        let cfg = WorkloadConfig {
            processes,
            tokens_per_process: tokens,
            c_min: 1.0,
            c_max: ratio,
            local_delay: 0.0,
            start_spread: 3.0,
        };
        let specs = generate(&net, &cfg, seed);
        let exec = run(&net, &specs).unwrap();
        let mut values = exec.values();
        values.sort_unstable();
        let n = (processes * tokens) as u64;
        prop_assert_eq!(values, (0..n).collect::<Vec<_>>());
    }

    /// Non-SC tokens are always a subset of non-linearizable tokens, and
    /// the boolean checkers agree with the (emptiness of the) token sets.
    #[test]
    fn checker_coherence(
        net in classic_network(),
        seed in 0u64..1000,
        ratio in 1.0f64..30.0,
    ) {
        let cfg = WorkloadConfig {
            processes: 5,
            tokens_per_process: 4,
            c_min: 0.5,
            c_max: 0.5 * ratio,
            local_delay: 0.0,
            start_spread: 1.0,
        };
        let specs = generate(&net, &cfg, seed);
        let exec = run(&net, &specs).unwrap();
        let ops = Op::from_execution(&exec);
        let nl = non_linearizable_ops(&ops);
        let nsc = non_sequentially_consistent_ops(&ops);
        for t in &nsc {
            prop_assert!(nl.contains(t), "non-SC must imply non-linearizable");
        }
        prop_assert_eq!(is_linearizable(&ops), nl.is_empty());
        prop_assert_eq!(is_sequentially_consistent(&ops), nsc.is_empty());
    }

    /// The timed engine and the instantaneous reference semantics agree on
    /// any schedule in which tokens traverse one at a time.
    #[test]
    fn engine_matches_reference_on_serialized_schedules(
        net in classic_network(),
        order_seed in 0u64..1000,
        tokens in 1usize..20,
    ) {
        let d = net.depth();
        // Token k occupies the disjoint time window [10k, 10k + d].
        let mut state = order_seed;
        let mut next_input = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize % net.fan_in()
        };
        let inputs: Vec<usize> = (0..tokens).map(|_| next_input()).collect();
        let specs: Vec<TimedTokenSpec> = inputs
            .iter()
            .enumerate()
            .map(|(k, &input)| {
                TimedTokenSpec::lock_step(
                    cnet_sim::ids::ProcessId(k),
                    input,
                    10.0 * k as f64,
                    1.0,
                    d,
                )
            })
            .collect();
        let exec = run(&net, &specs).unwrap();
        let mut reference = NetworkState::new(&net);
        for (k, &input) in inputs.iter().enumerate() {
            prop_assert_eq!(exec.records()[k].value, reference.traverse(&net, input).value);
        }
        // Fully serialized executions are linearizable.
        prop_assert!(is_linearizable(&Op::from_execution(&exec)));
    }

    /// Quiescent output counts satisfy the step property for any schedule —
    /// the defining property of a counting network, under time-driven
    /// interleavings rather than the sequential reference.
    #[test]
    fn step_property_under_timed_interleavings(
        net in classic_network(),
        seed in 0u64..1000,
    ) {
        let cfg = WorkloadConfig {
            processes: 7,
            tokens_per_process: 5,
            c_min: 0.1,
            c_max: 9.0,
            local_delay: 0.0,
            start_spread: 2.0,
        };
        let specs = generate(&net, &cfg, seed);
        let exec = run(&net, &specs).unwrap();
        let mut counts = vec![0u64; net.fan_out()];
        for r in exec.records() {
            counts[r.sink] += 1;
        }
        prop_assert!(has_step_property(&counts), "{:?}", counts);
    }

    /// Cascading counting networks preserves counting (used by the periodic
    /// construction); the composite still counts under timed interleavings.
    #[test]
    fn cascades_still_count(
        lgw in 1usize..3,
        seed in 0u64..500,
    ) {
        let w = 1 << lgw;
        let b = bitonic(w).unwrap();
        let p = periodic(w).unwrap();
        let net = cascade(&[&b, &p]).unwrap();
        let cfg = WorkloadConfig {
            processes: w,
            tokens_per_process: 4,
            c_min: 1.0,
            c_max: 7.0,
            local_delay: 0.0,
            start_spread: 2.0,
        };
        let specs = generate(&net, &cfg, seed);
        let exec = run(&net, &specs).unwrap();
        let mut counts = vec![0u64; w];
        for r in exec.records() {
            counts[r.sink] += 1;
        }
        prop_assert!(has_step_property(&counts));
    }

    /// The adaptive event-queue engine and the layered sort-based engine
    /// agree step for step on uniform networks, for arbitrary schedules.
    #[test]
    fn adaptive_engine_matches_layered_engine(
        net in classic_network(),
        seed in 0u64..1000,
        ratio in 1.0f64..10.0,
    ) {
        use cnet_sim::engine::run_adaptive;
        use cnet_sim::spec::AdaptiveTokenSpec;
        let cfg = WorkloadConfig {
            processes: 5,
            tokens_per_process: 4,
            c_min: 1.0,
            c_max: ratio,
            local_delay: 0.2,
            start_spread: 2.0,
        };
        let specs = generate(&net, &cfg, seed);
        let adaptive: Vec<AdaptiveTokenSpec> = specs.iter().map(Into::into).collect();
        let a = run(&net, &specs).unwrap();
        let b = run_adaptive(&net, &adaptive).unwrap();
        for (ra, rb) in a.records().iter().zip(b.records()) {
            prop_assert_eq!(ra.value, rb.value);
            prop_assert_eq!(ra.sink, rb.sink);
        }
    }

    /// Non-uniform extensions of counting networks still count under timed
    /// interleavings (adaptive engine), and the independent validator
    /// accepts every produced execution.
    #[test]
    fn extended_networks_count_under_timed_interleavings(
        lgw in 1usize..4,
        pair_seed in 0usize..8,
        seed in 0u64..500,
    ) {
        use cnet_sim::engine::run_adaptive;
        use cnet_sim::spec::AdaptiveTokenSpec;
        use cnet_sim::validate::validate;
        use cnet_topology::construct::append_adjacent_balancer;
        use cnet_util::rng::{Rng, SeedableRng, StdRng};
        let w = 1usize << lgw;
        let base = bitonic(w).unwrap();
        let net = append_adjacent_balancer(&base, pair_seed % (w - 1).max(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut specs = Vec::new();
        for p in 0..5usize {
            let mut t = rng.random_range(0.0..2.0);
            for _ in 0..3 {
                let delays: Vec<f64> =
                    (0..net.depth()).map(|_| rng.random_range(1.0..6.0)).collect();
                let worst = t + delays.iter().sum::<f64>();
                specs.push(AdaptiveTokenSpec {
                    process: cnet_sim::ids::ProcessId(p),
                    input: p % net.fan_in(),
                    enter_time: t,
                    delays,
                });
                t = worst + 0.1;
            }
        }
        let exec = run_adaptive(&net, &specs).unwrap();
        let summary = validate(&net, &exec).unwrap();
        prop_assert_eq!(summary.tokens, 15);
        let mut values = exec.values();
        values.sort_unstable();
        prop_assert_eq!(values, (0..15).collect::<Vec<_>>());
    }

    /// Measured timing parameters always lie inside the generator's envelope.
    #[test]
    fn measured_parameters_respect_the_envelope(
        net in classic_network(),
        seed in 0u64..1000,
        c_min in 0.5f64..2.0,
        spread in 1.0f64..4.0,
        local in 0.0f64..3.0,
    ) {
        let c_max = c_min * spread;
        let cfg = WorkloadConfig {
            processes: 4,
            tokens_per_process: 3,
            c_min,
            c_max,
            local_delay: local,
            start_spread: 2.0,
        };
        let specs = generate(&net, &cfg, seed);
        let exec = run(&net, &specs).unwrap();
        let params = TimingParams::measure(&exec);
        if net.depth() > 0 {
            prop_assert!(params.c_min.unwrap() >= c_min - 1e-12);
            prop_assert!(params.c_max.unwrap() <= c_max + 1e-12);
        }
        if let Some(cl) = params.local_delay {
            prop_assert!(cl >= local - 1e-12);
        }
    }
}
