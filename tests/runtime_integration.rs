//! Integration tests for the threaded shared-memory implementation,
//! audited with the `cnet-core` checkers.

use cnet_core::consistency::{is_linearizable, is_sequentially_consistent};
use cnet_core::fractions::{
    non_linearizability_fraction, non_sequential_consistency_fraction,
};
use cnet_runtime::history::to_ops;
use cnet_runtime::{
    drive, CounterBarrier, FetchAddCounter, LockCounter, ProcessCounter,
    SharedNetworkCounter, Workload,
};
use cnet_topology::construct::{bitonic, counting_tree, periodic};
use cnet_topology::state::has_step_property;
use std::thread;

#[test]
fn all_backends_hand_out_dense_unique_ids() {
    let workload = Workload { threads: 6, increments_per_thread: 400 };
    let total = 6 * 400;
    let b8 = bitonic(8).unwrap();
    let p8 = periodic(8).unwrap();
    let t8 = counting_tree(8).unwrap();

    let network_b = SharedNetworkCounter::new(&b8);
    let network_p = SharedNetworkCounter::new(&p8);
    let network_t = SharedNetworkCounter::new(&t8);
    let fetch_add = FetchAddCounter::new();
    let lock = LockCounter::new();

    fn check<C: ProcessCounter>(c: &C, workload: Workload, total: u64, label: &str) {
        let records = drive(c, workload);
        let mut ids: Vec<u64> = records.iter().map(|r| r.value).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..total).collect::<Vec<_>>(), "{label}");
    }
    check(&network_b, workload, total, "bitonic");
    check(&network_p, workload, total, "periodic");
    check(&network_t, workload, total, "tree");
    check(&fetch_add, workload, total, "fetch-add");
    check(&lock, workload, total, "lock");
}

#[test]
fn centralized_backends_are_linearizable_in_practice() {
    let workload = Workload { threads: 4, increments_per_thread: 500 };
    let fetch_add = FetchAddCounter::new();
    let records = drive(&fetch_add, workload);
    let ops = to_ops(&records);
    assert!(is_linearizable(&ops));
    assert!(is_sequentially_consistent(&ops));
    assert_eq!(non_linearizability_fraction(&ops), 0.0);
    assert_eq!(non_sequential_consistency_fraction(&ops), 0.0);
}

#[test]
fn network_runs_are_auditable_and_fractions_are_bounded() {
    let net = bitonic(8).unwrap();
    let counter = SharedNetworkCounter::new(&net);
    let records = drive(&counter, Workload { threads: 8, increments_per_thread: 300 });
    let ops = to_ops(&records);
    let f_nl = non_linearizability_fraction(&ops);
    let f_nsc = non_sequential_consistency_fraction(&ops);
    assert!((0.0..=1.0).contains(&f_nl));
    assert!(f_nsc <= f_nl, "every non-SC op is non-linearizable");
}

#[test]
fn quiescent_runtime_satisfies_the_step_property() {
    for net in [bitonic(16).unwrap(), periodic(8).unwrap(), counting_tree(16).unwrap()] {
        let counter = SharedNetworkCounter::new(&net);
        thread::scope(|s| {
            for p in 0..6usize {
                let c = &counter;
                s.spawn(move || {
                    for _ in 0..(100 + p * 37) {
                        c.next_for(p);
                    }
                });
            }
        });
        assert!(has_step_property(&counter.output_counts()), "{net}");
    }
}

#[test]
fn barrier_works_over_every_counter_backend() {
    fn rounds<C: ProcessCounter>(c: C) {
        let barrier = CounterBarrier::new(c, 5);
        thread::scope(|s| {
            for p in 0..5 {
                let b = &barrier;
                s.spawn(move || {
                    for _ in 0..50 {
                        b.wait(p);
                    }
                });
            }
        });
        assert_eq!(barrier.rounds_completed(), 50);
    }
    rounds(FetchAddCounter::new());
    rounds(LockCounter::new());
    let net = bitonic(8).unwrap();
    rounds(SharedNetworkCounter::new(&net));
    let tree = counting_tree(8).unwrap();
    rounds(SharedNetworkCounter::new(&tree));
}

#[test]
fn all_runtime_variants_agree_with_the_reference_sequentially() {
    use cnet_runtime::message_passing::MessagePassingCounter;
    use cnet_runtime::DiffractingTree;
    // Four implementations of the same counting tree, driven one token at a
    // time, must produce the identical value sequence.
    let net = counting_tree(8).unwrap();
    let shm = SharedNetworkCounter::new(&net);
    let mp = MessagePassingCounter::start(&net);
    let diff = DiffractingTree::new(8, 0).unwrap(); // prisms off: pure toggles
    let mut reference = cnet_topology::state::NetworkState::new(&net);
    for k in 0..100usize {
        let expected = reference.traverse(&net, 0).value;
        assert_eq!(shm.increment_from(0), expected, "shared memory, token {k}");
        assert_eq!(mp.increment_from(0), expected, "message passing, token {k}");
        assert_eq!(diff.increment(k), expected, "diffracting, token {k}");
    }
}

#[test]
fn message_passing_and_diffracting_histories_are_auditable() {
    use cnet_runtime::message_passing::MessagePassingCounter;
    use cnet_runtime::DiffractingTree;
    let net = bitonic(8).unwrap();
    let mp = MessagePassingCounter::start(&net);
    let records = drive(&mp, Workload { threads: 4, increments_per_thread: 100 });
    let ops = to_ops(&records);
    assert!(non_linearizability_fraction(&ops) <= 1.0);
    let mut values: Vec<u64> = records.iter().map(|r| r.value).collect();
    values.sort_unstable();
    assert_eq!(values, (0..400).collect::<Vec<_>>());

    let tree = DiffractingTree::new(8, 4).unwrap();
    let records = drive(&tree, Workload { threads: 4, increments_per_thread: 100 });
    let mut values: Vec<u64> = records.iter().map(|r| r.value).collect();
    values.sort_unstable();
    assert_eq!(values, (0..400).collect::<Vec<_>>());
}

#[test]
fn runtime_agrees_with_simulator_semantics_sequentially() {
    // Driving the shared-memory network from one thread must replay exactly
    // the sequential reference semantics, for every construction.
    for net in [bitonic(8).unwrap(), periodic(4).unwrap(), counting_tree(4).unwrap()] {
        let counter = SharedNetworkCounter::new(&net);
        let mut reference = cnet_topology::state::NetworkState::new(&net);
        for k in 0..200usize {
            let input = k % net.fan_in();
            assert_eq!(
                counter.increment_from(input),
                reference.traverse(&net, input).value,
                "{net} token {k}"
            );
        }
    }
}
