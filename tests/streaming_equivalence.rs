//! The PR-3 refactor's load-bearing property: the incremental (streaming)
//! consistency monitors in `cnet_core::trace` agree, event for event, with
//! the retained batch sweeps in `cnet_core::consistency` /
//! `cnet_core::fractions` — and both agree with a brute-force quadratic
//! oracle — on arbitrary operation sets, including the adversarial
//! executions produced by the Theorem 3.2 transformation
//! (`cnet_sim::transform::desequentialize`).
//!
//! Failing seeds are logged by the harness; replay with
//! `CNET_PROPTEST_SEED=<seed>`.

use cnet_core::consistency::{
    find_linearizability_violation, find_sequential_consistency_violation, is_linearizable,
    is_sequentially_consistent,
};
use cnet_core::fractions::{
    non_linearizability_fraction, non_linearizable_ops, non_sequential_consistency_fraction,
    non_sequentially_consistent_ops,
};
use cnet_core::op::Op;
use cnet_core::trace::{enter_order, stream_execution};
use cnet_core::{StreamingAuditor, StreamingFractionMeter, StreamingLinMonitor, StreamingScMonitor};
use cnet_sim::engine::run;
use cnet_sim::transform::desequentialize;
use cnet_sim::workload::{generate, WorkloadConfig};
use cnet_topology::construct::bitonic;
use cnet_util::proptest::prelude::*;

/// Random operation sets: arbitrary processes, overlapping integer-ns
/// intervals, and values drawn from a small range so collisions and
/// inversions are common.
fn random_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0usize..5, 0u64..600, 0u64..200, 0u64..30), 0..48).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(k, (process, enter_ns, duration, value))| Op {
                process,
                enter_ns,
                enter_seq: k,
                exit_ns: enter_ns + duration,
                exit_seq: k,
                value,
            })
            .collect()
    })
}

/// Brute-force oracle: some op completely precedes another with a larger
/// value.
fn quadratic_non_linearizable(ops: &[Op]) -> bool {
    ops.iter().any(|a| {
        ops.iter().any(|b| a.completely_precedes(b) && a.value > b.value)
    })
}

/// Brute-force oracle: some *same-process* op is followed, in per-process
/// program order (enter key), by an op with a smaller value. Real processes
/// are sequential, so enter order *is* program order; random test data may
/// make a process overlap itself, which is why this deliberately does not
/// require `completely_precedes`.
fn quadratic_non_sequentially_consistent(ops: &[Op]) -> bool {
    ops.iter().any(|a| {
        ops.iter().any(|b| {
            a.process == b.process && a.enter_key() < b.enter_key() && a.value > b.value
        })
    })
}

/// Streams `ops` in enter order through fresh monitors.
fn stream(ops: &[Op]) -> (StreamingLinMonitor, StreamingScMonitor, StreamingFractionMeter) {
    let mut lin = StreamingLinMonitor::new();
    let mut sc = StreamingScMonitor::new();
    let mut meter = StreamingFractionMeter::new();
    for &i in &enter_order(ops) {
        lin.push(&ops[i]);
        sc.push(&ops[i]);
        meter.push(&ops[i]);
    }
    (lin, sc, meter)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// On arbitrary operation sets, the streaming verdicts match the batch
    /// sweeps, and both match the quadratic oracles.
    #[test]
    fn streaming_monitors_match_batch_sweeps(ops in random_ops()) {
        let (lin, sc, _) = stream(&ops);
        let oracle_lin = !quadratic_non_linearizable(&ops);
        prop_assert_eq!(lin.is_linearizable(), oracle_lin);
        prop_assert_eq!(is_linearizable(&ops), oracle_lin);
        prop_assert_eq!(find_linearizability_violation(&ops).is_none(), oracle_lin);
        let oracle_sc = !quadratic_non_sequentially_consistent(&ops);
        prop_assert_eq!(sc.is_sequentially_consistent(), oracle_sc);
        prop_assert_eq!(is_sequentially_consistent(&ops), oracle_sc);
        prop_assert_eq!(find_sequential_consistency_violation(&ops).is_none(), oracle_sc);
    }

    /// Batch violation witnesses index the original slice and are real
    /// violations of the claimed kind.
    #[test]
    fn batch_witnesses_are_genuine(ops in random_ops()) {
        if let Some(v) = find_linearizability_violation(&ops) {
            prop_assert!(ops[v.earlier].completely_precedes(&ops[v.later]));
            prop_assert!(ops[v.earlier].value > ops[v.later].value);
        }
        if let Some(v) = find_sequential_consistency_violation(&ops) {
            prop_assert_eq!(ops[v.earlier].process, ops[v.later].process);
            // Program order, not real-time precedence: see the SC oracle.
            prop_assert!(ops[v.earlier].enter_key() < ops[v.later].enter_key());
            prop_assert!(ops[v.earlier].value > ops[v.later].value);
        }
    }

    /// The streaming fraction meter reproduces the batch Section 5.1
    /// counts and fractions, and its memory stays bounded by the maximum
    /// concurrency, not the stream length.
    #[test]
    fn streaming_fractions_match_batch_fractions(ops in random_ops()) {
        let (lin, _, meter) = stream(&ops);
        prop_assert_eq!(meter.total(), ops.len());
        prop_assert_eq!(meter.non_linearizable(), non_linearizable_ops(&ops).len());
        prop_assert_eq!(
            meter.non_sequentially_consistent(),
            non_sequentially_consistent_ops(&ops).len()
        );
        let f_nl = non_linearizability_fraction(&ops);
        let f_nsc = non_sequential_consistency_fraction(&ops);
        prop_assert!((meter.f_nl() - f_nl).abs() < 1e-12);
        prop_assert!((meter.f_nsc() - f_nsc).abs() < 1e-12);
        // Bounded memory: the heap never holds more ops than can overlap.
        let mut max_concurrency = 0usize;
        for a in &ops {
            let overlapping = ops.iter().filter(|b| a.overlaps(b)).count();
            max_concurrency = max_concurrency.max(overlapping);
        }
        prop_assert!(lin.pending_len() <= max_concurrency.max(1));
    }

    /// Theorem 3.2 adversarial permutations: when the transformation
    /// applies, the streamed verdicts on the transformed execution agree
    /// with the batch sweeps, and the transformed run is indeed not
    /// sequentially consistent.
    #[test]
    fn adversarial_transforms_agree_end_to_end(
        lgw in 1usize..3,
        seed in 0u64..400,
        ratio in 4.0f64..24.0,
    ) {
        let net = bitonic(1 << lgw).unwrap();
        let cfg = WorkloadConfig {
            processes: 4,
            tokens_per_process: 3,
            c_min: 0.5,
            c_max: 0.5 * ratio,
            local_delay: 0.0,
            start_spread: 1.0,
        };
        let specs = generate(&net, &cfg, seed);
        let exec = run(&net, &specs).unwrap();
        // Only non-linearizable executions (with slack) transform; skip the
        // rest — the unconditional agreement is covered above.
        let Ok(outcome) = desequentialize(&net, &specs, &exec) else { return Ok(()) };
        let twisted = run(&net, &outcome.specs).unwrap();
        let ops = Op::from_execution(&twisted);
        let mut auditor = StreamingAuditor::new();
        let n = stream_execution(&twisted, &mut auditor);
        prop_assert_eq!(n, ops.len());
        prop_assert_eq!(auditor.operations(), ops.len());
        prop_assert_eq!(auditor.is_linearizable(), is_linearizable(&ops));
        prop_assert_eq!(
            auditor.is_sequentially_consistent(),
            is_sequentially_consistent(&ops)
        );
        prop_assert!((auditor.f_nl() - non_linearizability_fraction(&ops)).abs() < 1e-12);
        prop_assert!((auditor.f_nsc() - non_sequential_consistency_fraction(&ops)).abs() < 1e-12);
        // The whole point of the construction:
        prop_assert!(!auditor.is_sequentially_consistent());
    }
}

/// Random per-shard streams with nondecreasing enter stamps — the shape
/// the recorder's rings actually produce — plus a seed that drives the
/// chunking and interleaving of the sharded pipeline.
fn random_shard_streams() -> impl Strategy<Value = Vec<Vec<cnet_core::trace::RawOp>>> {
    prop::collection::vec(
        prop::collection::vec((0u64..50, 0u64..40, 0u64..200), 0..40),
        1..5,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(shard, stream)| {
                let mut t = 0u64;
                stream
                    .into_iter()
                    .map(|(delta, duration, value)| {
                        t += delta;
                        cnet_core::trace::RawOp {
                            process: shard,
                            enter_ns: t,
                            exit_ns: t + duration,
                            value,
                        }
                    })
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The parallel audit pipeline's load-bearing property: shard
    /// monitors chunked at arbitrary frontier boundaries and merged in an
    /// arbitrary interleaving produce a verdict **bit-identical** to the
    /// sequential merger + auditor on the same per-shard streams, and the
    /// frontiers' local candidate counts are sound lower bounds on the
    /// global counts. Failing seeds are logged by the harness; replay
    /// with `CNET_PROPTEST_SEED=<seed>`.
    #[test]
    fn merge_auditor_matches_the_sequential_auditor(
        streams in random_shard_streams(),
        seed in 1u64..u64::MAX,
    ) {
        use cnet_core::trace::{EventMerger, MergeAuditor, ShardMonitor};

        // The sequential reference: whole streams, one merger, one drain.
        let mut merger = EventMerger::new(streams.len());
        for (shard, stream) in streams.iter().enumerate() {
            for &op in stream {
                merger.push(shard, op);
            }
            merger.finish(shard);
        }
        let mut reference = StreamingAuditor::new();
        merger.drain_into(&mut reference);

        // The sharded pipeline: each shard consumed by its own monitor,
        // cut into frontiers at xorshift-chosen boundaries, ingested in a
        // xorshift-shuffled shard order.
        let mut x = seed;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut monitors: Vec<ShardMonitor> =
            (0..streams.len()).map(ShardMonitor::new).collect();
        let mut cursors = vec![0usize; streams.len()];
        let mut merged = MergeAuditor::new(streams.len());
        loop {
            let alive: Vec<usize> =
                (0..streams.len()).filter(|&s| cursors[s] < streams[s].len()).collect();
            if alive.is_empty() {
                break;
            }
            let s = alive[(rng() as usize) % alive.len()];
            let take = 1 + (rng() as usize) % (streams[s].len() - cursors[s]);
            for &op in &streams[s][cursors[s]..cursors[s] + take] {
                monitors[s].observe(op);
            }
            cursors[s] += take;
            let finished = cursors[s] == streams[s].len();
            merged.ingest(monitors[s].take_frontier(finished));
        }
        for (shard, stream) in streams.iter().enumerate() {
            if stream.is_empty() {
                merged.finish_shard(shard);
            }
        }

        // Bit-identical verdict (the summary covers ops, both violation
        // counts, both fractions, and the whole QQC lateness profile).
        prop_assert_eq!(merged.summary(), reference.summary());
        let audited = merged.auditor();
        prop_assert_eq!(audited.operations(), reference.operations());
        prop_assert_eq!(audited.is_linearizable(), reference.is_linearizable());
        prop_assert_eq!(
            audited.is_sequentially_consistent(),
            reference.is_sequentially_consistent()
        );
        // Nothing fell between frontiers: per-shard coverage is exact.
        let observed: usize = merged.shard_stats().iter().map(|st| st.observed).sum();
        let total: usize = streams.iter().map(Vec::len).sum();
        prop_assert_eq!(observed, total);
        // Local candidates never overclaim: a shard-local precedence is a
        // genuine global precedence, so the lower bounds must hold.
        let local_nl: usize =
            merged.shard_stats().iter().map(|st| st.candidate_non_lin).sum();
        prop_assert!(local_nl <= audited.non_linearizable());
    }
}
