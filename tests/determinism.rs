//! The whole pipeline is deterministic: generating a workload from a seed,
//! running it, serializing the history, and measuring consistency fractions
//! must produce identical results on every run. This is what makes a logged
//! seed sufficient to reproduce any failure.

use cnet_core::fractions::{
    non_linearizability_fraction, non_sequential_consistency_fraction,
};
use cnet_core::op::Op;
use cnet_sim::engine::run;
use cnet_sim::workload::{generate, WorkloadConfig};
use cnet_util::json;
use cnet_topology::construct::{bitonic, periodic};

fn cfg() -> WorkloadConfig {
    WorkloadConfig {
        processes: 5,
        tokens_per_process: 4,
        c_min: 0.5,
        c_max: 6.0,
        local_delay: 0.0,
        start_spread: 2.0,
    }
}

#[test]
fn same_seed_gives_byte_identical_histories() {
    for net in [bitonic(8).unwrap(), periodic(8).unwrap()] {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let run_once = || {
                let specs = generate(&net, &cfg(), seed);
                let exec = run(&net, &specs).unwrap();
                json::to_string(&exec)
            };
            let first = run_once();
            let second = run_once();
            // Byte-identical serialized histories.
            assert_eq!(first, second, "{net} seed {seed}");
        }
    }
}

#[test]
fn same_seed_gives_identical_consistency_reports() {
    let net = bitonic(8).unwrap();
    for seed in 0u64..8 {
        let report = || {
            let specs = generate(&net, &cfg(), seed);
            let ops = Op::from_execution(&run(&net, &specs).unwrap());
            (
                non_linearizability_fraction(&ops).to_bits(),
                non_sequential_consistency_fraction(&ops).to_bits(),
            )
        };
        // Compare bit patterns: the fractions must match exactly, not just
        // within a tolerance.
        assert_eq!(report(), report(), "seed {seed}");
    }
}

#[test]
fn different_seeds_give_different_histories() {
    // Sanity check that the histories above are not trivially equal.
    let net = bitonic(8).unwrap();
    let exec_json = |seed| {
        let specs = generate(&net, &cfg(), seed);
        json::to_string(&run(&net, &specs).unwrap())
    };
    assert_ne!(exec_json(0), exec_json(1));
}
