//! Partition composition: chaining a network's per-node sub-networks is
//! the same function as traversing the whole network.
//!
//! The cluster fabric's correctness rests on one identity: feed a token
//! into node 0 on entry port `p`, traverse each node's compiled layer
//! range, carry the exit port across each cut, and let the final node's
//! counter hand out the value — and you must get exactly the value the
//! un-partitioned network would have produced. This file checks that
//! identity sequentially (one token in flight at a time, so both sides see
//! the same arrival order at every balancer) over randomized widths, node
//! counts, and entry-port sequences.

use cnet_runtime::{CompiledNetwork, SharedNetworkCounter};
use cnet_topology::construct::{bitonic, periodic};
use cnet_topology::{Network, Partition};
use cnet_util::proptest::prelude::*;
use cnet_util::sync::atomic::AtomicUsize;
use cnet_util::sync::CachePadded;

/// One non-final stage: the compiled sub-network plus its balancer states.
struct Stage {
    engine: CompiledNetwork,
    balancers: Box<[CachePadded<AtomicUsize>]>,
}

/// Compiles nodes `0..nodes-1` as forwarding stages and the final node as
/// a counting stage — the shapes the cluster fabric runs.
fn compile_chain(net: &Network, nodes: usize) -> (Vec<Stage>, SharedNetworkCounter) {
    let plan = Partition::contiguous(net, nodes).expect("plan");
    let upstream = (0..nodes - 1)
        .map(|k| {
            let engine = CompiledNetwork::compile(&plan.sub_network(net, k));
            let balancers = engine.new_balancer_states();
            Stage { engine, balancers }
        })
        .collect();
    let tail = SharedNetworkCounter::from_compiled(CompiledNetwork::compile(
        &plan.sub_network(net, nodes - 1),
    ));
    (upstream, tail)
}

/// Drives `inputs` one token at a time through the partitioned chain and
/// the whole network, asserting the counter values agree token-by-token.
fn assert_composition(net: &Network, nodes: usize, inputs: &[usize]) {
    let fan = net.fan().expect("common fan");
    let (upstream, tail) = compile_chain(net, nodes);
    let whole = SharedNetworkCounter::new(net);
    for &input in inputs {
        let p = input % fan;
        let mut port = p;
        for stage in &upstream {
            port = stage.engine.traverse(port, &stage.balancers);
        }
        let clustered = tail.increment_from(port);
        let direct = whole.increment_from(p);
        assert_eq!(
            clustered, direct,
            "token entering on port {p} diverged across the {nodes}-node cut"
        );
    }
}

#[test]
fn two_node_bitonic_chain_matches_the_whole_network() {
    let net = bitonic(8).expect("B(8)");
    let inputs: Vec<usize> = (0..256).map(|i| (i * 5 + 3) % 8).collect();
    assert_composition(&net, 2, &inputs);
}

#[test]
fn every_node_count_on_the_periodic_network_matches() {
    let net = periodic(4).expect("periodic 4");
    let inputs: Vec<usize> = (0..128).collect();
    for nodes in 1..=net.depth() {
        assert_composition(&net, nodes, &inputs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The partitioned composition equals the whole network for random
    /// widths, node counts, and entry-port sequences — the tentpole
    /// equivalence the forwarding path relies on.
    #[test]
    fn partitioned_composition_equals_whole_network(
        wexp in 1u32..4,
        node_pick in 1usize..8,
        inputs in prop::collection::vec(0usize..64, 1usize..200),
    ) {
        let fan = 1usize << wexp;
        let net = bitonic(fan).expect("power-of-two fan");
        let nodes = 1 + node_pick % net.depth();
        let (upstream, tail) = compile_chain(&net, nodes);
        let whole = SharedNetworkCounter::new(&net);
        for &input in &inputs {
            let p = input % fan;
            let mut port = p;
            for stage in &upstream {
                port = stage.engine.traverse(port, &stage.balancers);
            }
            prop_assert_eq!(tail.increment_from(port), whole.increment_from(p));
        }
    }

    /// The sub-networks tile the whole network: balancer counts sum, every
    /// stage keeps the fan, and stage depths sum to the whole depth.
    #[test]
    fn sub_networks_tile_the_network(wexp in 1u32..4, node_pick in 1usize..8) {
        let fan = 1usize << wexp;
        let net = bitonic(fan).expect("power-of-two fan");
        let nodes = 1 + node_pick % net.depth();
        let plan = Partition::contiguous(&net, nodes).expect("plan");
        let mut size = 0;
        let mut depth = 0;
        for k in 0..nodes {
            let sub = plan.sub_network(&net, k);
            prop_assert_eq!(sub.fan(), Some(fan));
            size += sub.size();
            depth += sub.depth();
        }
        prop_assert_eq!(size, net.size());
        prop_assert_eq!(depth, net.depth());
    }
}
