//! Quickstart: build a bitonic counting network, hand out values from many
//! threads, and verify the counting guarantees.
//!
//! Run: `cargo run --release -p cnet-bench --example quickstart`

use cnet_runtime::SharedNetworkCounter;
use cnet_topology::construct::bitonic;
use cnet_topology::state::has_step_property;
use std::thread;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the classic bitonic counting network B(8): 24 two-by-two
    //    balancers in 6 layers, feeding 8 counters.
    let net = bitonic(8)?;
    println!("built {net}");

    // 2. Lay it out in shared memory: one atomic word per balancer, one
    //    counter per output wire.
    let counter = SharedNetworkCounter::new(&net);

    // 3. Eight threads each grab 1000 values; thread p enters on wire p.
    let mut values: Vec<u64> = thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|p| {
                let counter = &counter;
                s.spawn(move || {
                    (0..1000).map(|_| counter.increment_from(p)).collect::<Vec<u64>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    // 4. The counting guarantee: 8000 values, no gaps, no duplicates …
    values.sort_unstable();
    assert_eq!(values, (0..8000).collect::<Vec<_>>());
    println!("8 threads drew 8000 values: gap-free and duplicate-free");

    // 5. … and in the quiescent state the step property holds: each counter
    //    handed out the same number of values (±1, top-justified).
    let counts = counter.output_counts();
    assert!(has_step_property(&counts));
    println!("quiescent output counts {counts:?} satisfy the step property");
    Ok(())
}
