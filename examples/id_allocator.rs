//! A concurrent ID allocator with a consistency audit.
//!
//! The counting problem in the wild: many workers draw unique, dense ids
//! (memory addresses, routing destinations, ticket numbers). This example
//! runs three interchangeable backends — a counting network, a single
//! fetch-and-add word, and a lock — records every operation with wall-clock
//! timestamps, and audits the histories with the paper's checkers: are the
//! ids unique and dense? was the history linearizable? sequentially
//! consistent? what fraction of operations were inconsistent?
//!
//! Run: `cargo run --release -p cnet-bench --example id_allocator`

use cnet_core::consistency::{is_linearizable, is_sequentially_consistent};
use cnet_core::fractions::{
    non_linearizability_fraction, non_sequential_consistency_fraction,
};
use cnet_runtime::history::to_ops;
use cnet_runtime::{drive, FetchAddCounter, LockCounter, ProcessCounter, SharedNetworkCounter, Workload};
use cnet_topology::construct::bitonic;

fn audit<C: ProcessCounter>(name: &str, backend: &C, workload: Workload) {
    let records = drive(backend, workload);
    let total = records.len() as u64;

    // Uniqueness and density.
    let mut ids: Vec<u64> = records.iter().map(|r| r.value).collect();
    ids.sort_unstable();
    let dense = ids == (0..total).collect::<Vec<_>>();

    // Consistency audit with the paper's machinery.
    let ops = to_ops(&records);
    println!(
        "{name:<22} ids dense: {dense}   linearizable: {:<5}  seq. consistent: {:<5}  \
         F_nl = {:.4}  F_nsc = {:.4}",
        is_linearizable(&ops),
        is_sequentially_consistent(&ops),
        non_linearizability_fraction(&ops),
        non_sequential_consistency_fraction(&ops),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload { threads: 8, increments_per_thread: 2_000 };
    println!(
        "allocating {} ids from 3 backends ({} threads x {} each)\n",
        workload.threads * workload.increments_per_thread,
        workload.threads,
        workload.increments_per_thread
    );

    let net = bitonic(8)?;
    let network = SharedNetworkCounter::new(&net);
    audit("bitonic network B(8)", &network, workload);

    let fetch_add = FetchAddCounter::new();
    audit("fetch&add word", &fetch_add, workload);

    let lock = LockCounter::new();
    audit("lock-based counter", &lock, workload);

    println!(
        "\nAll three allocators hand out dense, unique ids. The centralized backends are\n\
         linearizable by construction; the counting network spreads contention but gives\n\
         no such timing-free guarantee — the audit shows whatever this run's scheduling\n\
         produced, which is exactly what the paper's timing conditions reason about."
    );
    Ok(())
}
