//! Barrier synchronization on a counting network — the application the
//! paper opens with (Section 1.1).
//!
//! A barrier needs surprisingly little from its counter: per round of `n`
//! arrivals, exactly one process must observe the round's top value. That
//! follows from gap-freedom alone, which is why a *sequentially consistent*
//! counter is enough and full linearizability is overkill — the paper's
//! motivating observation.
//!
//! Run: `cargo run --release -p cnet-bench --example barrier`

use cnet_runtime::{CounterBarrier, SharedNetworkCounter};
use cnet_topology::construct::bitonic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

const PARTIES: usize = 6;
const ROUNDS: usize = 200;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = bitonic(8)?;
    let barrier = CounterBarrier::new(SharedNetworkCounter::new(&net), PARTIES);

    // A phase-stamped work log: every party must finish phase r before any
    // party starts phase r+1.
    let arrivals = AtomicUsize::new(0);
    let mut leader_per_round = vec![0usize; ROUNDS];

    thread::scope(|s| {
        let handles: Vec<_> = (0..PARTIES)
            .map(|p| {
                let barrier = &barrier;
                let arrivals = &arrivals;
                s.spawn(move || {
                    let mut led = Vec::new();
                    for round in 0..ROUNDS {
                        // "Work" of this phase.
                        arrivals.fetch_add(1, Ordering::AcqRel);
                        // Synchronize.
                        if barrier.wait(p) {
                            led.push(round);
                        }
                        // Everyone from this phase has arrived by now.
                        assert!(arrivals.load(Ordering::Acquire) >= (round + 1) * PARTIES);
                    }
                    led
                })
            })
            .collect();
        for h in handles {
            for round in h.join().unwrap() {
                leader_per_round[round] += 1;
            }
        }
    });

    // Exactly one leader per round: the process that drew the round's top
    // counter value.
    assert!(leader_per_round.iter().all(|&n| n == 1));
    println!(
        "{PARTIES} processes crossed {ROUNDS} barrier rounds over a bitonic counting \
         network; every round had exactly one leader."
    );
    println!(
        "counter handed out {} values in total (= parties * rounds = {})",
        barrier.counter().tokens_counted(),
        PARTIES * ROUNDS
    );
    Ok(())
}
