//! An inconsistency monitor: how consistency degrades as a deployment's
//! timing assumptions erode.
//!
//! Sweeps the asynchrony ratio `c_max/c_min` of simulated schedules on a
//! bitonic counting network across the paper's thresholds and reports, at
//! each point, which timing conditions still hold and the worst observed
//! inconsistency fractions (random schedules plus the paper's adversarial
//! wave schedule once it applies).
//!
//! Run: `cargo run --release -p cnet-bench --example inconsistency_monitor`

use cnet_core::conditions::TimingCondition;
use cnet_core::fractions::{
    non_linearizability_fraction, non_sequential_consistency_fraction,
};
use cnet_core::op::Op;
use cnet_core::theory;
use cnet_sim::adversary::bitonic_three_wave;
use cnet_sim::engine::run;
use cnet_sim::timing::TimingParams;
use cnet_sim::workload::{generate, WorkloadConfig};
use cnet_topology::construct::bitonic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = 16usize;
    let net = bitonic(w)?;
    let wave_threshold = theory::bitonic_wave_threshold(w);
    println!(
        "monitoring B({w}): depth {}, LSST sufficiency at ratio 2, wave threshold {:.2}\n",
        net.depth(),
        wave_threshold
    );
    println!(
        "{:>6} | {:>9} | {:>9} | {:>12} | {:>12}",
        "ratio", "ratio<=2", "local-OK", "worst F_nl", "worst F_nsc"
    );

    for ratio in [1.5, 2.0, 2.5, 3.0, wave_threshold + 0.01, 6.0, 10.0] {
        let mut worst_nl = 0.0f64;
        let mut worst_nsc = 0.0f64;
        // Random traffic at this asynchrony.
        let cfg = WorkloadConfig {
            processes: w,
            tokens_per_process: 5,
            c_min: 1.0,
            c_max: ratio,
            local_delay: 0.0,
            start_spread: 2.0,
        };
        let mut params = TimingParams::default();
        for seed in 0..100 {
            let specs = generate(&net, &cfg, seed);
            let exec = run(&net, &specs)?;
            params = TimingParams::measure(&exec);
            let ops = Op::from_execution(&exec);
            worst_nl = worst_nl.max(non_linearizability_fraction(&ops));
            worst_nsc = worst_nsc.max(non_sequential_consistency_fraction(&ops));
        }
        // The adversarial waves, once the asynchrony admits them.
        if ratio > wave_threshold {
            let sched = bitonic_three_wave(&net, 1.0, ratio)?;
            let exec = run(&net, &sched.specs)?;
            let ops = Op::from_execution(&exec);
            worst_nl = worst_nl.max(non_linearizability_fraction(&ops));
            worst_nsc = worst_nsc.max(non_sequential_consistency_fraction(&ops));
        }
        println!(
            "{ratio:>6.2} | {:>9} | {:>9} | {worst_nl:>12.3} | {worst_nsc:>12.3}",
            TimingCondition::RatioAtMostTwo.holds(&params),
            TimingCondition::local_delay(&net).holds(&params),
        );
    }

    println!(
        "\nReading: at ratio <= 2 every schedule is consistent (the sufficient region);\n\
         past the wave threshold {:.2} an adversary can push one third of all operations\n\
         into inconsistency — and if your application only needs per-process montonicity,\n\
         restoring it takes only the LOCAL delay bound of Theorem 4.1, not global timing.",
        wave_threshold
    );
    Ok(())
}
